//! Cartesian neighborhood (halo) exchange schedules.
//!
//! ADCL's original core use case (§III-A lists "Cartesian neighborhood
//! communication" first among the supported operations): every rank of a
//! periodic 2-D process grid exchanges a halo block with its four
//! neighbours. Three classic implementations with different
//! communication structure:
//!
//! * [`NeighborAlgo::PostAll`] — post all four sends and receives in one
//!   round (maximum concurrency, one progress call suffices),
//! * [`NeighborAlgo::PairwiseDim`] — one round per dimension, exchanging
//!   both directions of that dimension together (the classic
//!   `MPI_Sendrecv` structure),
//! * [`NeighborAlgo::Ordered`] — four rounds, one direction at a time
//!   (minimal buffer pressure, most rounds).

use crate::schedule::{Action, Round, Schedule};
use mpisim::RankId;

/// A periodic 2-D process grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cart2d {
    /// Extent in x (fastest-varying).
    pub gx: usize,
    /// Extent in y.
    pub gy: usize,
}

impl Cart2d {
    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.gx * self.gy
    }

    /// Coordinates of `rank`.
    pub fn coords(&self, rank: RankId) -> (usize, usize) {
        (rank % self.gx, rank / self.gx)
    }

    /// Rank at periodic coordinates.
    pub fn rank_at(&self, x: isize, y: isize) -> RankId {
        let gx = self.gx as isize;
        let gy = self.gy as isize;
        let x = ((x % gx) + gx) % gx;
        let y = ((y % gy) + gy) % gy;
        y as usize * self.gx + x as usize
    }

    /// The four neighbours of `rank`: `[left, right, down, up]`.
    pub fn neighbors(&self, rank: RankId) -> [RankId; 4] {
        let (x, y) = self.coords(rank);
        let (x, y) = (x as isize, y as isize);
        [
            self.rank_at(x - 1, y),
            self.rank_at(x + 1, y),
            self.rank_at(x, y - 1),
            self.rank_at(x, y + 1),
        ]
    }
}

/// The halo-exchange implementation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NeighborAlgo {
    /// One round with all four directions.
    PostAll,
    /// Two rounds: x-dimension exchange, then y-dimension exchange.
    PairwiseDim,
    /// Four rounds: left, right, down, up — one direction each.
    Ordered,
}

impl NeighborAlgo {
    /// All implementations.
    pub fn all() -> Vec<NeighborAlgo> {
        vec![
            NeighborAlgo::PostAll,
            NeighborAlgo::PairwiseDim,
            NeighborAlgo::Ordered,
        ]
    }

    /// Report name.
    pub fn name(self) -> &'static str {
        match self {
            NeighborAlgo::PostAll => "post-all",
            NeighborAlgo::PairwiseDim => "pairwise-dim",
            NeighborAlgo::Ordered => "ordered",
        }
    }
}

/// Logical block id for the halo travelling `src → dst`.
pub fn halo_block(src: RankId, dst: RankId, p: usize) -> u32 {
    (src * p + dst) as u32
}

/// Build the halo-exchange schedule for `rank` on `grid`, exchanging
/// `halo_bytes` with each of the four neighbours.
///
/// On degenerate grids (extent 1 or 2 in a dimension) opposite neighbours
/// coincide; the builders still send one message per *direction*, so
/// matching stays symmetric across ranks.
pub fn build_neighbor(
    algo: NeighborAlgo,
    grid: Cart2d,
    rank: RankId,
    halo_bytes: usize,
) -> Schedule {
    let p = grid.size();
    let mut sched = Schedule::new();
    if p <= 1 || halo_bytes == 0 {
        return sched;
    }
    let [left, right, down, up] = grid.neighbors(rank);
    // (send-to, recv-from) per direction; sending left means receiving
    // from the right, and so on.
    let dirs: [(RankId, RankId); 4] = [(left, right), (right, left), (down, up), (up, down)];
    let mk = |to: RankId, from: RankId| {
        let mut acts = Vec::new();
        if to != rank {
            acts.push(Action::send(to, halo_bytes, vec![halo_block(rank, to, p)]));
        }
        if from != rank {
            acts.push(Action::recv(from, halo_bytes));
        }
        if to == rank || from == rank {
            // Self-neighbour on a degenerate dimension: local copy.
            acts.push(Action::copy(halo_bytes));
        }
        acts
    };
    match algo {
        NeighborAlgo::PostAll => {
            let mut round = Round::new();
            for &(to, from) in &dirs {
                round.0.extend(mk(to, from));
            }
            sched.push_round(round);
        }
        NeighborAlgo::PairwiseDim => {
            for pair in dirs.chunks(2) {
                let mut round = Round::new();
                for &(to, from) in pair {
                    round.0.extend(mk(to, from));
                }
                sched.push_round(round);
            }
        }
        NeighborAlgo::Ordered => {
            for &(to, from) in &dirs {
                sched.push_round(Round(mk(to, from)));
            }
        }
    }
    sched
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify;
    use std::collections::HashSet;

    fn verify_halo(grid: Cart2d, algo: NeighborAlgo) -> Result<(), String> {
        let p = grid.size();
        let scheds: Vec<Schedule> = (0..p).map(|r| build_neighbor(algo, grid, r, 256)).collect();
        for (r, s) in scheds.iter().enumerate() {
            s.validate(r, Some(256))?;
        }
        let initial: Vec<HashSet<u32>> = (0..p)
            .map(|r| (0..p).map(|d| halo_block(r, d, p)).collect())
            .collect();
        let recv = verify::execute(&scheds, &initial)?;
        for (r, got) in recv.iter().enumerate() {
            for n in grid.neighbors(r) {
                if n == r {
                    continue;
                }
                if !got.contains(&halo_block(n, r, p)) {
                    return Err(format!("rank {r} missing halo from neighbour {n}"));
                }
            }
        }
        Ok(())
    }

    #[test]
    fn grid_geometry() {
        let g = Cart2d { gx: 4, gy: 3 };
        assert_eq!(g.size(), 12);
        assert_eq!(g.coords(0), (0, 0));
        assert_eq!(g.coords(5), (1, 1));
        assert_eq!(g.neighbors(5), [4, 6, 1, 9]);
        // periodic wrap on the boundary
        assert_eq!(g.neighbors(0), [3, 1, 8, 4]);
    }

    #[test]
    fn all_algorithms_all_grids() {
        for (gx, gy) in [(2usize, 2usize), (3, 3), (4, 3), (5, 4), (8, 8)] {
            let grid = Cart2d { gx, gy };
            for algo in NeighborAlgo::all() {
                verify_halo(grid, algo).unwrap_or_else(|e| panic!("{algo:?} {gx}x{gy}: {e}"));
            }
        }
    }

    #[test]
    fn round_structure() {
        let grid = Cart2d { gx: 4, gy: 4 };
        assert_eq!(
            build_neighbor(NeighborAlgo::PostAll, grid, 5, 64).num_rounds(),
            1
        );
        assert_eq!(
            build_neighbor(NeighborAlgo::PairwiseDim, grid, 5, 64).num_rounds(),
            2
        );
        assert_eq!(
            build_neighbor(NeighborAlgo::Ordered, grid, 5, 64).num_rounds(),
            4
        );
    }

    #[test]
    fn degenerate_dimension() {
        // 2x1 grid: left == right neighbour; schedules must still verify.
        for algo in NeighborAlgo::all() {
            verify_halo(Cart2d { gx: 2, gy: 1 }, algo)
                .unwrap_or_else(|e| panic!("{algo:?} 2x1: {e}"));
        }
    }

    #[test]
    fn single_rank_noop() {
        let grid = Cart2d { gx: 1, gy: 1 };
        for algo in NeighborAlgo::all() {
            assert_eq!(build_neighbor(algo, grid, 0, 64).num_rounds(), 0);
        }
    }
}
