//! Global schedule cache.
//!
//! Schedules are pure functions of `(collective, algorithm, nranks,
//! msg_bytes, segsize, root, rank)` — yet the tuning runtime used to
//! rebuild them for every rank on every iteration of every simulated run,
//! and a verification sweep repeats the same few hundred shapes thousands
//! of times. This cache interns built schedules as `Arc<Schedule>` so a
//! given shape is constructed once per process and then shared across
//! ranks, iterations, runs and sweep worker threads.
//!
//! Steady-state reads are contention-free: every thread keeps a bounded
//! thread-local *front cache* of `Arc<Schedule>` clones, validated against
//! a global epoch ([`clear`] bumps it), so the hot path of a sweep touches
//! no shared memory beyond one relaxed-ordering epoch load. Only front
//! misses fall through to the sharded map (cheap SplitMix64 field mix, one
//! `RwLock` per shard), and only a genuinely new shape takes the write
//! lock (double-checked, so racing builders converge on one entry). The
//! shared map stays the single source of truth — front caches are
//! populated exclusively from it, never the other way around, so no
//! insert can be lost to a thread-local copy.
//!
//! Hit/miss counts live on the `simcore::metrics` registry
//! (`nbc.cache.hits` / `nbc.cache.misses`) and feed the perf harness
//! (`BENCH_engine.json`). Front-cache hits are tallied thread-locally and
//! flushed into the registry at sweep barriers (via
//! `simcore::par::register_sweep_flush`) and on every [`stats`] call, so
//! totals observed between sweeps are exact for every `jobs` value.
//!
//! Correctness: entries are immutable once inserted, and the key captures
//! every input of the builders, so a cached schedule is structurally
//! identical to a fresh build (regression-tested in
//! `tests/integration_par.rs`).

use crate::allgather::{build_allgather, AllgatherAlgo};
use crate::allreduce::{build_allreduce, AllreduceAlgo};
use crate::alltoall::{build_alltoall, AlltoallAlgo};
use crate::barrier::build_barrier;
use crate::bcast::{build_bcast, BcastAlgo};
use crate::gather::{build_gather, build_scatter, GatherAlgo};
use crate::neighbor::{build_neighbor, Cart2d, NeighborAlgo};
use crate::reduce::{build_reduce, ReduceAlgo};
use crate::schedule::{CollSpec, Schedule};
use mpisim::RankId;
use simcore::metrics::{self, Counter};
use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

/// Cache key: every input that influences a builder's output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Key {
    /// Collective family (one code per `cached_*` entry point).
    coll: u8,
    /// Algorithm code within the family (tree fan-outs are folded in).
    algo: u32,
    /// Segment size in bytes (0 where not applicable).
    seg: u64,
    nprocs: u64,
    msg_bytes: u64,
    root: u64,
    rank: u64,
    /// Extra structure parameter (e.g. the y-extent of a neighbor grid).
    extra: u64,
}

const SHARDS: usize = 64;

/// Shard selector: a SplitMix64-style mix over the key's fields. Much
/// cheaper than hashing the whole struct through SipHash on every lookup,
/// and it decorrelates the low bits so consecutive ranks (the common access
/// pattern: every rank of a world queries the same shape) land on different
/// shards.
fn shard_index(k: &Key) -> usize {
    let mut h = (k.coll as u64) ^ ((k.algo as u64) << 8);
    for v in [k.seg, k.nprocs, k.msg_bytes, k.root, k.rank, k.extra] {
        h = (h ^ v).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        h ^= h >> 29;
    }
    h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h ^= h >> 32;
    (h as usize) % SHARDS
}

struct ScheduleCache {
    shards: Vec<RwLock<HashMap<Key, Arc<Schedule>>>>,
    /// Registry counters plus subtractive baselines: the registry values
    /// stay monotone for the process-wide metrics dump while [`stats`]
    /// keeps its "since last [`reset_stats`]" contract.
    hits: &'static Counter,
    misses: &'static Counter,
    hits_base: AtomicU64,
    misses_base: AtomicU64,
}

fn cache() -> &'static ScheduleCache {
    static CACHE: OnceLock<ScheduleCache> = OnceLock::new();
    CACHE.get_or_init(|| {
        // Front-cache tallies must reach the registry at sweep barriers;
        // registration is idempotent (fn-pointer dedup).
        simcore::par::register_sweep_flush(flush_front_stats);
        ScheduleCache {
            shards: (0..SHARDS).map(|_| RwLock::new(HashMap::new())).collect(),
            hits: metrics::counter("nbc.cache.hits"),
            misses: metrics::counter("nbc.cache.misses"),
            hits_base: AtomicU64::new(0),
            misses_base: AtomicU64::new(0),
        }
    })
}

/// Global front-cache epoch: [`clear`] bumps it, invalidating every
/// thread's front cache on its next lookup.
static EPOCH: AtomicU64 = AtomicU64::new(0);

/// Bound on per-thread front-cache entries. A verification sweep touches a
/// few hundred distinct shapes; the cap only matters for degenerate
/// workloads and keeps a long-lived worker from pinning unbounded Arcs.
const FRONT_CAP: usize = 4096;

thread_local! {
    /// Per-thread front cache: key → Arc clone, valid while `epoch`
    /// matches the global epoch. Reads here are the contention-free hot
    /// path — no lock, no shared cache line.
    static FRONT: RefCell<(u64, HashMap<Key, Arc<Schedule>>)> =
        RefCell::new((0, HashMap::new()));
    /// Front-cache hits not yet flushed to the registry counter.
    static FRONT_HITS: Cell<u64> = const { Cell::new(0) };
}

/// Flush this thread's front-cache hit tally into the registry counter.
/// Runs on every sweep participant at sweep barriers and at the top of
/// [`stats`], so cross-thread totals are exact at observation points.
fn flush_front_stats() {
    let pending = FRONT_HITS.with(|h| h.replace(0));
    if pending > 0 {
        cache().hits.add(pending);
    }
}

/// Front-cache lookup. `epoch` is the global epoch observed by the caller;
/// a stale front cache is dropped wholesale before the lookup.
fn front_get(key: &Key, epoch: u64) -> Option<Arc<Schedule>> {
    FRONT.with(|f| {
        let mut f = f.borrow_mut();
        if f.0 != epoch {
            f.0 = epoch;
            f.1.clear();
        }
        f.1.get(key).cloned()
    })
}

/// Populate the front cache from a shared-map result (never from a build
/// directly — the shared map is the source of truth).
fn front_put(key: Key, val: Arc<Schedule>, epoch: u64) {
    FRONT.with(|f| {
        let mut f = f.borrow_mut();
        if f.0 != epoch {
            f.0 = epoch;
            f.1.clear();
        }
        if f.1.len() < FRONT_CAP {
            f.1.insert(key, val);
        }
    });
}

/// Read-lock a shard, recovering from poison: cached schedules are
/// immutable once inserted, so a panic in some unrelated `par_map` worker
/// that held a lock mid-`get`/`insert` leaves the map in a usable state.
/// Without this, one panicking test poisons a global shard and cascades
/// spurious failures through every later in-process cache user.
fn read_shard(
    s: &RwLock<HashMap<Key, Arc<Schedule>>>,
) -> std::sync::RwLockReadGuard<'_, HashMap<Key, Arc<Schedule>>> {
    s.read().unwrap_or_else(|e| e.into_inner())
}

/// Write-lock a shard (insert path only), with the same poison recovery.
fn write_shard(
    s: &RwLock<HashMap<Key, Arc<Schedule>>>,
) -> std::sync::RwLockWriteGuard<'_, HashMap<Key, Arc<Schedule>>> {
    s.write().unwrap_or_else(|e| e.into_inner())
}

fn get_or_build(key: Key, build: impl FnOnce() -> Schedule) -> Arc<Schedule> {
    // Hot path: thread-local front cache — no locks, no shared cache
    // lines, just one relaxed epoch load. This is what sweep workers hit
    // in steady state.
    let epoch = EPOCH.load(Ordering::Acquire);
    if let Some(found) = front_get(&key, epoch) {
        FRONT_HITS.with(|h| h.set(h.get() + 1));
        return found;
    }
    let c = cache();
    let shard = &c.shards[shard_index(&key)];
    // Front miss: shared read lock on the backing map.
    if let Some(found) = read_shard(shard).get(&key) {
        c.hits.inc();
        let found = Arc::clone(found);
        front_put(key, Arc::clone(&found), epoch);
        return found;
    }
    // Build outside any lock: schedule construction can be expensive at
    // large scale, and two threads racing on the same key just means one
    // redundant build whose result loses the insert race below.
    c.misses.inc();
    let built = Arc::new(build());
    // Double-checked insert: whoever wins the write race defines the entry;
    // losers adopt the winner's Arc so `ptr_eq` holds across racers.
    let adopted = Arc::clone(write_shard(shard).entry(key).or_insert(built));
    front_put(key, Arc::clone(&adopted), epoch);
    adopted
}

/// `(hits, misses)` since process start (or the last [`reset_stats`]).
///
/// Flushes the calling thread's front-cache tally first; worker tallies
/// are flushed at sweep barriers, so after a `par_map` returns the totals
/// here are exact regardless of how the sweep was threaded.
pub fn stats() -> (u64, u64) {
    flush_front_stats();
    let c = cache();
    (
        c.hits
            .get()
            .saturating_sub(c.hits_base.load(Ordering::Relaxed)),
        c.misses
            .get()
            .saturating_sub(c.misses_base.load(Ordering::Relaxed)),
    )
}

/// Reset the hit/miss counters (the cached entries stay; the underlying
/// registry counters keep their monotone totals).
pub fn reset_stats() {
    let c = cache();
    c.hits_base.store(c.hits.get(), Ordering::Relaxed);
    c.misses_base.store(c.misses.get(), Ordering::Relaxed);
}

/// Number of distinct schedules currently interned.
pub fn len() -> usize {
    cache().shards.iter().map(|s| read_shard(s).len()).sum()
}

/// Drop every cached schedule (for tests and memory-bounded sweeps).
/// Bumping the epoch invalidates every thread's front cache on its next
/// lookup; the stale thread-local Arcs are released at that point.
pub fn clear() {
    EPOCH.fetch_add(1, Ordering::Release);
    for s in &cache().shards {
        write_shard(s).clear();
    }
}

fn base_key(coll: u8, algo: u32, seg: u64, rank: RankId, spec: &CollSpec) -> Key {
    Key {
        coll,
        algo,
        seg,
        nprocs: spec.nprocs as u64,
        msg_bytes: spec.msg_bytes as u64,
        root: spec.root as u64,
        rank: rank as u64,
        extra: 0,
    }
}

/// Cached [`build_bcast`].
pub fn cached_bcast(algo: BcastAlgo, seg: usize, rank: RankId, spec: &CollSpec) -> Arc<Schedule> {
    let code = match algo {
        BcastAlgo::Linear => 0,
        BcastAlgo::Chain => 1,
        BcastAlgo::Binomial => 2,
        BcastAlgo::Tree(k) => 100 + k as u32,
    };
    get_or_build(base_key(1, code, seg as u64, rank, spec), || {
        build_bcast(algo, seg, rank, spec)
    })
}

/// Cached [`build_alltoall`].
pub fn cached_alltoall(algo: AlltoallAlgo, rank: RankId, spec: &CollSpec) -> Arc<Schedule> {
    let code = match algo {
        AlltoallAlgo::Linear => 0,
        AlltoallAlgo::Pairwise => 1,
        AlltoallAlgo::Dissemination => 2,
    };
    get_or_build(base_key(2, code, 0, rank, spec), || {
        build_alltoall(algo, rank, spec)
    })
}

/// Cached [`build_allgather`].
pub fn cached_allgather(algo: AllgatherAlgo, rank: RankId, spec: &CollSpec) -> Arc<Schedule> {
    let code = match algo {
        AllgatherAlgo::Linear => 0,
        AllgatherAlgo::Ring => 1,
        AllgatherAlgo::Bruck => 2,
    };
    get_or_build(base_key(3, code, 0, rank, spec), || {
        build_allgather(algo, rank, spec)
    })
}

/// Cached [`build_reduce`].
pub fn cached_reduce(algo: ReduceAlgo, rank: RankId, spec: &CollSpec) -> Arc<Schedule> {
    let code = match algo {
        ReduceAlgo::Binomial => 0,
        ReduceAlgo::Chain => 1,
        ReduceAlgo::Linear => 2,
    };
    get_or_build(base_key(4, code, 0, rank, spec), || {
        build_reduce(algo, rank, spec)
    })
}

/// Cached [`build_allreduce`].
pub fn cached_allreduce(algo: AllreduceAlgo, rank: RankId, spec: &CollSpec) -> Arc<Schedule> {
    let code = match algo {
        AllreduceAlgo::RecursiveDoubling => 0,
        AllreduceAlgo::Ring => 1,
        AllreduceAlgo::ReduceBcast => 2,
    };
    get_or_build(base_key(5, code, 0, rank, spec), || {
        build_allreduce(algo, rank, spec)
    })
}

/// Cached [`build_gather`].
pub fn cached_gather(algo: GatherAlgo, rank: RankId, spec: &CollSpec) -> Arc<Schedule> {
    let code = match algo {
        GatherAlgo::Linear => 0,
        GatherAlgo::Binomial => 1,
    };
    get_or_build(base_key(6, code, 0, rank, spec), || {
        build_gather(algo, rank, spec)
    })
}

/// Cached [`build_scatter`].
pub fn cached_scatter(algo: GatherAlgo, rank: RankId, spec: &CollSpec) -> Arc<Schedule> {
    let code = match algo {
        GatherAlgo::Linear => 0,
        GatherAlgo::Binomial => 1,
    };
    get_or_build(base_key(7, code, 0, rank, spec), || {
        build_scatter(algo, rank, spec)
    })
}

/// Cached [`build_barrier`].
pub fn cached_barrier(rank: RankId, spec: &CollSpec) -> Arc<Schedule> {
    get_or_build(base_key(8, 0, 0, rank, spec), || build_barrier(rank, spec))
}

/// Cached [`build_neighbor`].
pub fn cached_neighbor(
    algo: NeighborAlgo,
    grid: Cart2d,
    rank: RankId,
    msg_bytes: usize,
) -> Arc<Schedule> {
    let code = match algo {
        NeighborAlgo::PostAll => 0,
        NeighborAlgo::PairwiseDim => 1,
        NeighborAlgo::Ordered => 2,
    };
    let key = Key {
        coll: 9,
        algo: code,
        seg: 0,
        nprocs: grid.gx as u64,
        msg_bytes: msg_bytes as u64,
        root: 0,
        rank: rank as u64,
        extra: grid.gy as u64,
    };
    get_or_build(key, || build_neighbor(algo, grid, rank, msg_bytes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Mutex, MutexGuard};

    /// `clear_invalidates_front_caches` wipes the process-global cache;
    /// every test that asserts Arc identity across two lookups (or counts
    /// its own hits) must not interleave with it.
    static CLEAR_LOCK: Mutex<()> = Mutex::new(());

    fn clear_lock() -> MutexGuard<'static, ()> {
        CLEAR_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn hit_returns_same_arc() {
        let _g = clear_lock();
        let spec = CollSpec::new(6, 4096);
        let a = cached_alltoall(AlltoallAlgo::Pairwise, 3, &spec);
        let b = cached_alltoall(AlltoallAlgo::Pairwise, 3, &spec);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn distinct_keys_distinct_schedules() {
        let spec = CollSpec::new(6, 4096);
        let a = cached_alltoall(AlltoallAlgo::Pairwise, 0, &spec);
        let b = cached_alltoall(AlltoallAlgo::Pairwise, 1, &spec);
        assert!(!Arc::ptr_eq(&a, &b));
        let c = cached_alltoall(AlltoallAlgo::Linear, 0, &spec);
        assert!(!Arc::ptr_eq(&a, &c));
    }

    #[test]
    fn cached_matches_fresh_build() {
        let spec = CollSpec {
            nprocs: 9,
            msg_bytes: 300_000,
            root: 4,
        };
        for algo in BcastAlgo::all() {
            for rank in 0..spec.nprocs {
                let cached = cached_bcast(algo, 64 * 1024, rank, &spec);
                let fresh = build_bcast(algo, 64 * 1024, rank, &spec);
                assert_eq!(cached.render(), fresh.render(), "{algo:?} rank {rank}");
            }
        }
    }

    #[test]
    fn tree_fanout_distinguished() {
        let spec = CollSpec::new(12, 1 << 20);
        let t2 = cached_bcast(BcastAlgo::Tree(2), 32 * 1024, 0, &spec);
        let t3 = cached_bcast(BcastAlgo::Tree(3), 32 * 1024, 0, &spec);
        assert_ne!(t2.render(), t3.render());
    }

    #[test]
    fn shard_mix_spreads_consecutive_ranks() {
        // Every rank of a world queries the same shape back-to-back; the
        // field mix must not funnel them into a handful of shards.
        let spec = CollSpec::new(64, 4096);
        let mut used = std::collections::HashSet::new();
        for rank in 0..64 {
            used.insert(shard_index(&base_key(1, 0, 0, rank, &spec)));
        }
        assert!(used.len() >= SHARDS / 2, "only {} shards used", used.len());
    }

    #[test]
    fn poisoned_shards_recover() {
        let _g = clear_lock();
        // Poison every shard by panicking while holding each lock, then
        // verify the cache keeps serving lookups, inserts, len() and
        // clear() instead of cascading PoisonError panics.
        for s in &cache().shards {
            let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let _g = s.write().unwrap_or_else(|e| e.into_inner());
                panic!("poison this shard");
            }));
            assert!(res.is_err());
        }
        let spec = CollSpec::new(23, 555);
        let a = cached_barrier(11, &spec);
        let b = cached_barrier(11, &spec);
        assert!(Arc::ptr_eq(&a, &b));
        assert!(len() >= 1);
    }

    #[test]
    fn front_cache_serves_same_arc_as_shared_map() {
        // Second lookup is a front-cache hit and must hand back the very
        // same interned Arc the shared map holds.
        let _g = clear_lock();
        let spec = CollSpec::new(13, 2048);
        let a = cached_allgather(AllgatherAlgo::Bruck, 5, &spec);
        let b = cached_allgather(AllgatherAlgo::Bruck, 5, &spec);
        assert!(Arc::ptr_eq(&a, &b));
        // And a third thread-fresh lookup (no front entry) also converges.
        let c = std::thread::spawn(move || cached_allgather(AllgatherAlgo::Bruck, 5, &spec))
            .join()
            .unwrap();
        assert!(Arc::ptr_eq(&a, &c));
    }

    #[test]
    fn clear_invalidates_front_caches() {
        let _g = clear_lock();
        let spec = CollSpec::new(17, 9999);
        let a = cached_barrier(3, &spec);
        clear();
        // The front cache must not resurrect the dropped entry: the next
        // lookup rebuilds and interns a fresh Arc.
        let b = cached_barrier(3, &spec);
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(a.render(), b.render());
    }

    #[test]
    fn concurrent_stress_no_lost_inserts() {
        let _g = clear_lock();
        // Hammer one shape set from many threads: every thread must end up
        // with the interned schedule for each key (same render), and the
        // shared map must contain every key exactly once.
        let spec = CollSpec::new(19, 123_456);
        let handles: Vec<_> = (0..8)
            .map(|_| {
                std::thread::spawn(move || {
                    (0..spec.nprocs)
                        .map(|rank| cached_reduce(ReduceAlgo::Binomial, rank, &spec))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let per_thread: Vec<Vec<Arc<Schedule>>> =
            handles.into_iter().map(|h| h.join().unwrap()).collect();
        for t in &per_thread[1..] {
            for (a, b) in per_thread[0].iter().zip(t) {
                // Racing builders may briefly hold distinct Arcs, but the
                // content is identical and later lookups converge.
                assert_eq!(a.render(), b.render());
            }
        }
        for rank in 0..spec.nprocs {
            let again = cached_reduce(ReduceAlgo::Binomial, rank, &spec);
            assert!(per_thread
                .iter()
                .any(|t| Arc::ptr_eq(&t[rank], &again) || t[rank].render() == again.render()));
        }
    }

    #[test]
    fn stats_count() {
        let _g = clear_lock();
        // Use a shape no other test uses so counters are attributable.
        let spec = CollSpec::new(31, 777);
        reset_stats();
        let (h0, m0) = stats();
        assert_eq!((h0, m0), (0, 0));
        let _ = cached_barrier(17, &spec);
        let _ = cached_barrier(17, &spec);
        let (h, m) = stats();
        // Other tests may run concurrently; at minimum our miss + hit landed.
        assert!(m >= 1, "misses {m}");
        assert!(h >= 1, "hits {h}");
    }
}
