//! All-gather schedule builders: linear, ring, and Bruck (dissemination).
//!
//! ADCL's function-set library also covers `Iallgather` (the paper converts
//! the Open MPI `MPI_Allgather` implementations to LibNBC schedules). Block
//! id `i` denotes rank `i`'s contribution.

use crate::schedule::{Action, CollSpec, Round, Schedule};
use mpisim::RankId;

/// The all-gather algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AllgatherAlgo {
    /// One round: everyone sends its block to everyone.
    Linear,
    /// `p−1` rounds around a ring, forwarding the newest block.
    Ring,
    /// `⌈log₂ p⌉` rounds, doubling the gathered prefix each round.
    Bruck,
}

impl AllgatherAlgo {
    /// All implementations.
    pub fn all() -> Vec<AllgatherAlgo> {
        vec![
            AllgatherAlgo::Linear,
            AllgatherAlgo::Ring,
            AllgatherAlgo::Bruck,
        ]
    }

    /// Report name.
    pub fn name(self) -> &'static str {
        match self {
            AllgatherAlgo::Linear => "linear",
            AllgatherAlgo::Ring => "ring",
            AllgatherAlgo::Bruck => "bruck",
        }
    }
}

/// Build the all-gather schedule for `rank`. `spec.msg_bytes` is the size
/// of each rank's contribution.
pub fn build_allgather(algo: AllgatherAlgo, rank: RankId, spec: &CollSpec) -> Schedule {
    let p = spec.nprocs;
    let s = spec.msg_bytes;
    let mut sched = Schedule::new();
    if p <= 1 || s == 0 {
        return sched;
    }
    match algo {
        AllgatherAlgo::Linear => {
            let mut round = Round::new();
            round.0.push(Action::copy(s)); // own block into the result
            for off in 1..p {
                let to = (rank + off) % p;
                let from = (rank + p - off) % p;
                round.0.push(Action::send(to, s, vec![rank as u32]));
                round.0.push(Action::recv(from, s));
            }
            sched.push_round(round);
        }
        AllgatherAlgo::Ring => {
            sched.push_round(Round(vec![Action::copy(s)]));
            let next = (rank + 1) % p;
            let prev = (rank + p - 1) % p;
            for k in 0..p - 1 {
                // Forward the block gathered k rounds ago.
                let fwd = (rank + p - k) % p;
                sched.push_round(Round(vec![
                    Action::send(next, s, vec![fwd as u32]),
                    Action::recv(prev, s),
                ]));
            }
        }
        AllgatherAlgo::Bruck => {
            sched.push_round(Round(vec![Action::copy(s)]));
            // After round k the rank holds blocks {rank .. rank+2^(k+1)-1}.
            let phases = usize::BITS - (p - 1).leading_zeros();
            for k in 0..phases {
                let bit = 1usize << k;
                let cnt = bit.min(p - bit);
                let to = (rank + p - bit) % p;
                let from = (rank + bit) % p;
                let blocks: Vec<u32> = (0..cnt).map(|i| ((rank + i) % p) as u32).collect();
                sched.push_round(Round(vec![
                    Action::send(to, cnt * s, blocks),
                    Action::recv(from, cnt * s),
                ]));
            }
        }
    }
    sched
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_single_round() {
        let sched = build_allgather(AllgatherAlgo::Linear, 0, &CollSpec::new(6, 10));
        assert_eq!(sched.num_rounds(), 1);
        assert_eq!(sched.bytes_sent(), 50);
        assert_eq!(sched.bytes_received(), 50);
    }

    #[test]
    fn ring_rounds_and_volume() {
        let p = 7;
        let sched = build_allgather(AllgatherAlgo::Ring, 3, &CollSpec::new(p, 10));
        assert_eq!(sched.num_rounds(), p); // copy + p-1 exchanges
        assert_eq!(sched.bytes_sent(), (p - 1) * 10);
    }

    #[test]
    fn bruck_volumes_balance() {
        for p in [2usize, 3, 5, 8, 13] {
            for r in 0..p {
                let sched = build_allgather(AllgatherAlgo::Bruck, r, &CollSpec::new(p, 16));
                assert_eq!(sched.bytes_sent(), sched.bytes_received(), "p={p} r={r}");
                // total gathered volume = (p-1)*s
                assert_eq!(sched.bytes_received(), (p - 1) * 16);
            }
        }
    }

    #[test]
    fn degenerate() {
        for algo in AllgatherAlgo::all() {
            assert_eq!(
                build_allgather(algo, 0, &CollSpec::new(1, 8)).num_rounds(),
                0
            );
        }
    }

    #[test]
    fn validates() {
        for p in [2usize, 4, 9] {
            for algo in AllgatherAlgo::all() {
                for r in 0..p {
                    build_allgather(algo, r, &CollSpec::new(p, 32))
                        .validate(r, Some(32))
                        .unwrap_or_else(|e| panic!("{algo:?} p={p} r={r}: {e}"));
                }
            }
        }
    }
}
