//! The collective-operation schedule representation.
//!
//! A [`Schedule`] is local to one rank. It consists of [`Round`]s; all
//! actions inside a round are independent and may proceed concurrently, and
//! a round only begins once the previous round has completed locally (the
//! LibNBC "barrier" semantics). Send actions carry the logical *block ids*
//! they move, which the [`crate::verify`] module uses to prove collective
//! semantics; the timing simulator only looks at byte counts.

use mpisim::RankId;

/// What an action does.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ActionKind {
    /// Send `bytes` to `peer`, logically moving `blocks`.
    Send {
        /// Destination rank.
        peer: RankId,
        /// Logical data blocks carried (for semantic verification).
        blocks: Vec<u32>,
    },
    /// Receive `bytes` from `peer`.
    Recv {
        /// Source rank.
        peer: RankId,
    },
    /// Local memory copy of `bytes` (packing/unpacking, self-block moves).
    Copy,
    /// Local reduction arithmetic over `bytes`.
    Calc,
}

/// One schedule action.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Action {
    /// The operation.
    pub kind: ActionKind,
    /// Payload size in bytes.
    pub bytes: usize,
}

impl Action {
    /// A send of `bytes` to `peer` carrying `blocks`.
    pub fn send(peer: RankId, bytes: usize, blocks: Vec<u32>) -> Action {
        Action {
            kind: ActionKind::Send { peer, blocks },
            bytes,
        }
    }

    /// A receive of `bytes` from `peer`.
    pub fn recv(peer: RankId, bytes: usize) -> Action {
        Action {
            kind: ActionKind::Recv { peer },
            bytes,
        }
    }

    /// A local copy of `bytes`.
    pub fn copy(bytes: usize) -> Action {
        Action {
            kind: ActionKind::Copy,
            bytes,
        }
    }

    /// A local reduction over `bytes`.
    pub fn calc(bytes: usize) -> Action {
        Action {
            kind: ActionKind::Calc,
            bytes,
        }
    }
}

/// A set of independent actions separated from the next set by a local
/// barrier.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Round(pub Vec<Action>);

impl Round {
    /// Empty round (useful while building).
    pub fn new() -> Round {
        Round(Vec::new())
    }

    /// True if the round has no actions.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

/// A complete per-rank schedule.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Schedule {
    /// The rounds, executed in order.
    pub rounds: Vec<Round>,
}

impl Schedule {
    /// Empty schedule (a no-op operation).
    pub fn new() -> Schedule {
        Schedule { rounds: Vec::new() }
    }

    /// Append a round, skipping empty ones.
    pub fn push_round(&mut self, round: Round) {
        if !round.is_empty() {
            self.rounds.push(round);
        }
    }

    /// Number of rounds.
    pub fn num_rounds(&self) -> usize {
        self.rounds.len()
    }

    /// Total number of send actions.
    pub fn num_sends(&self) -> usize {
        self.iter_actions()
            .filter(|a| matches!(a.kind, ActionKind::Send { .. }))
            .count()
    }

    /// Total number of receive actions.
    pub fn num_recvs(&self) -> usize {
        self.iter_actions()
            .filter(|a| matches!(a.kind, ActionKind::Recv { .. }))
            .count()
    }

    /// Total bytes sent by this rank.
    pub fn bytes_sent(&self) -> usize {
        self.iter_actions()
            .filter(|a| matches!(a.kind, ActionKind::Send { .. }))
            .map(|a| a.bytes)
            .sum()
    }

    /// Total bytes received by this rank.
    pub fn bytes_received(&self) -> usize {
        self.iter_actions()
            .filter(|a| matches!(a.kind, ActionKind::Recv { .. }))
            .map(|a| a.bytes)
            .sum()
    }

    /// Iterator over all actions in round order.
    pub fn iter_actions(&self) -> impl Iterator<Item = &Action> {
        self.rounds.iter().flat_map(|r| r.0.iter())
    }

    /// Render the schedule as a compact human-readable listing, one line
    /// per round — a debugging aid for builder development:
    ///
    /// ```text
    /// round 0: copy(1024)
    /// round 1: send->3(1024) recv<-1(1024)
    /// ```
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (i, round) in self.rounds.iter().enumerate() {
            let _ = write!(out, "round {i}:");
            for a in &round.0 {
                match &a.kind {
                    ActionKind::Send { peer, .. } => {
                        let _ = write!(out, " send->{peer}({})", a.bytes);
                    }
                    ActionKind::Recv { peer } => {
                        let _ = write!(out, " recv<-{peer}({})", a.bytes);
                    }
                    ActionKind::Copy => {
                        let _ = write!(out, " copy({})", a.bytes);
                    }
                    ActionKind::Calc => {
                        let _ = write!(out, " calc({})", a.bytes);
                    }
                }
            }
            out.push('\n');
        }
        out
    }

    /// Basic well-formedness checks: no zero-byte sends/recvs, no
    /// self-messages for `rank`, block annotations consistent with sizes
    /// when `block_bytes` is known.
    pub fn validate(&self, rank: RankId, block_bytes: Option<usize>) -> Result<(), String> {
        for (ri, round) in self.rounds.iter().enumerate() {
            for a in &round.0 {
                match &a.kind {
                    ActionKind::Send { peer, blocks } => {
                        if *peer == rank {
                            return Err(format!("round {ri}: send to self"));
                        }
                        if a.bytes == 0 {
                            return Err(format!("round {ri}: zero-byte send"));
                        }
                        if let Some(bb) = block_bytes {
                            if !blocks.is_empty() && blocks.len() * bb != a.bytes {
                                return Err(format!(
                                    "round {ri}: {} blocks x {bb} B != {} B",
                                    blocks.len(),
                                    a.bytes
                                ));
                            }
                        }
                    }
                    ActionKind::Recv { peer } => {
                        if *peer == rank {
                            return Err(format!("round {ri}: recv from self"));
                        }
                        if a.bytes == 0 {
                            return Err(format!("round {ri}: zero-byte recv"));
                        }
                    }
                    ActionKind::Copy | ActionKind::Calc => {}
                }
            }
        }
        Ok(())
    }
}

/// Sequential composition of per-rank schedules: the rounds of every
/// stage, concatenated in order. Because a round only begins once the
/// previous round completed *locally*, the result executes stage `k+1`
/// strictly after stage `k` on each rank — without any global barrier in
/// between, exactly like issuing the operations back to back on one
/// request. Channel FIFO order keeps the matching sound: every rank posts
/// all of stage `k`'s sends/recvs before stage `k+1`'s, so per-(src, dst)
/// traffic of consecutive stages can never cross.
///
/// This is the mock-up constructor of the performance-guideline literature
/// (Hunold & Carpen-Amarie): e.g. `sequence(&[scatter, allgather])` is a
/// broadcast mock-up whose measured time upper-bounds what a well-tuned
/// `Ibcast` should cost.
pub fn sequence(stages: &[&Schedule]) -> Schedule {
    let mut out = Schedule::new();
    for stage in stages {
        for round in &stage.rounds {
            out.push_round(round.clone());
        }
    }
    out
}

impl Schedule {
    /// `self` followed by `next` (see [`sequence`]).
    pub fn then(&self, next: &Schedule) -> Schedule {
        sequence(&[self, next])
    }
}

/// Parameters describing one collective-operation instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CollSpec {
    /// Number of participating ranks.
    pub nprocs: usize,
    /// Message size in bytes: the *full* payload for rooted operations
    /// (bcast/reduce), or the per-process-pair block size for alltoall and
    /// allgather (matching the paper's reporting convention).
    pub msg_bytes: usize,
    /// Root rank for rooted operations; ignored otherwise.
    pub root: RankId,
}

impl CollSpec {
    /// Convenience constructor with root 0.
    pub fn new(nprocs: usize, msg_bytes: usize) -> CollSpec {
        CollSpec {
            nprocs,
            msg_bytes,
            root: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_round_skips_empty() {
        let mut s = Schedule::new();
        s.push_round(Round::new());
        assert_eq!(s.num_rounds(), 0);
        s.push_round(Round(vec![Action::copy(10)]));
        assert_eq!(s.num_rounds(), 1);
    }

    #[test]
    fn byte_accounting() {
        let mut s = Schedule::new();
        s.push_round(Round(vec![
            Action::send(1, 100, vec![0]),
            Action::recv(2, 50),
        ]));
        s.push_round(Round(vec![Action::send(3, 200, vec![1, 2])]));
        assert_eq!(s.bytes_sent(), 300);
        assert_eq!(s.bytes_received(), 50);
        assert_eq!(s.num_sends(), 2);
        assert_eq!(s.num_recvs(), 1);
    }

    #[test]
    fn render_is_readable() {
        let mut s = Schedule::new();
        s.push_round(Round(vec![Action::copy(1024)]));
        s.push_round(Round(vec![
            Action::send(3, 1024, vec![0]),
            Action::recv(1, 1024),
            Action::calc(8),
        ]));
        let r = s.render();
        assert_eq!(
            r,
            "round 0: copy(1024)\nround 1: send->3(1024) recv<-1(1024) calc(8)\n"
        );
    }

    #[test]
    fn validate_rejects_self_send() {
        let mut s = Schedule::new();
        s.push_round(Round(vec![Action::send(0, 10, vec![])]));
        assert!(s.validate(0, None).is_err());
        assert!(s.validate(1, None).is_ok());
    }

    #[test]
    fn validate_rejects_zero_bytes() {
        let mut s = Schedule::new();
        s.push_round(Round(vec![Action::recv(1, 0)]));
        assert!(s.validate(0, None).is_err());
    }

    #[test]
    fn sequence_concatenates_rounds_in_stage_order() {
        let mut a = Schedule::new();
        a.push_round(Round(vec![Action::send(1, 10, vec![0])]));
        a.push_round(Round(vec![Action::recv(1, 10)]));
        let mut b = Schedule::new();
        b.push_round(Round(vec![Action::copy(10)]));
        let s = sequence(&[&a, &b]);
        assert_eq!(s.num_rounds(), 3);
        assert_eq!(s.rounds[0], a.rounds[0]);
        assert_eq!(s.rounds[1], a.rounds[1]);
        assert_eq!(s.rounds[2], b.rounds[0]);
        assert_eq!(a.then(&b), s);
    }

    #[test]
    fn sequence_of_empty_stages_is_empty() {
        let empty = Schedule::new();
        assert_eq!(sequence(&[&empty, &empty]).num_rounds(), 0);
        let mut a = Schedule::new();
        a.push_round(Round(vec![Action::calc(8)]));
        assert_eq!(sequence(&[&empty, &a, &empty]), a);
    }

    #[test]
    fn stitched_scatter_allgather_is_a_bcast_mockup() {
        // Scatter delivers block r to rank r; allgather then shares every
        // rank's block. Stitched sequentially, the pair implements a
        // broadcast of all p blocks from the root — the classic mock-up.
        use crate::allgather::{build_allgather, AllgatherAlgo};
        use crate::gather::{build_scatter, GatherAlgo};
        use crate::verify;
        use std::collections::HashSet;
        for p in [2usize, 4, 7, 8] {
            let spec = CollSpec::new(p, 512);
            let scheds: Vec<Schedule> = (0..p)
                .map(|r| {
                    sequence(&[
                        &build_scatter(GatherAlgo::Binomial, r, &spec),
                        &build_allgather(AllgatherAlgo::Ring, r, &spec),
                    ])
                })
                .collect();
            for (r, s) in scheds.iter().enumerate() {
                s.validate(r, None).unwrap();
            }
            let mut initial: Vec<HashSet<u32>> = vec![HashSet::new(); p];
            initial[0] = (0..p as u32).collect();
            let got = verify::execute(&scheds, &initial).expect("mockup deadlock-free");
            for (r, recv) in got.iter().enumerate() {
                for b in 0..p as u32 {
                    assert!(
                        r == 0 || recv.contains(&b),
                        "p={p}: rank {r} missing block {b} after scatter+allgather"
                    );
                }
            }
        }
    }

    #[test]
    fn validate_checks_block_sizes() {
        let mut s = Schedule::new();
        s.push_round(Round(vec![Action::send(1, 100, vec![0, 1])]));
        assert!(s.validate(0, Some(50)).is_ok());
        assert!(s.validate(0, Some(60)).is_err());
        // Unannotated sends pass regardless.
        let mut s2 = Schedule::new();
        s2.push_round(Round(vec![Action::send(1, 100, vec![])]));
        assert!(s2.validate(0, Some(60)).is_ok());
    }
}
