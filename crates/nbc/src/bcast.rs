//! Broadcast schedule builders.
//!
//! The paper's `Ibcast` function-set is parametrized by two attributes:
//!
//! * **fan-out** of the broadcast tree — `0` (linear: root sends to
//!   everyone, i.e. infinite fan-out), `1` (chain), `2`–`5` (k-ary trees)
//!   and `N` (binomial tree) — seven values, and
//! * **segment size** — the payload is split into 32, 64 or 128 KiB
//!   segments that are pipelined down the tree,
//!
//! giving the 7 × 3 = 21 implementations evaluated in the paper.
//!
//! Logical block ids are segment indices; the semantic verifier checks that
//! every non-root rank receives every segment.

use crate::schedule::{Action, CollSpec, Round, Schedule};
use mpisim::RankId;

/// Broadcast tree shape (the paper's fan-out attribute).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BcastAlgo {
    /// Fan-out 0: the root sends directly to every other rank.
    Linear,
    /// Fan-out 1: a pipeline chain through all ranks.
    Chain,
    /// Fan-out k (2..=5 in the paper's set): k-ary tree.
    Tree(usize),
    /// Fan-out "N": binomial tree.
    Binomial,
}

impl BcastAlgo {
    /// The paper's seven fan-out values.
    pub fn all() -> Vec<BcastAlgo> {
        vec![
            BcastAlgo::Linear,
            BcastAlgo::Chain,
            BcastAlgo::Tree(2),
            BcastAlgo::Tree(3),
            BcastAlgo::Tree(4),
            BcastAlgo::Tree(5),
            BcastAlgo::Binomial,
        ]
    }

    /// The fan-out attribute value used by the ADCL attribute sets:
    /// 0 = linear, 1 = chain, k = k-ary, `i64::MAX` stands in for "N"
    /// (binomial).
    pub fn fanout_attr(self) -> i64 {
        match self {
            BcastAlgo::Linear => 0,
            BcastAlgo::Chain => 1,
            BcastAlgo::Tree(k) => k as i64,
            BcastAlgo::Binomial => i64::MAX,
        }
    }

    /// Short name for reports (matches the paper's terminology).
    pub fn name(self) -> String {
        match self {
            BcastAlgo::Linear => "linear".into(),
            BcastAlgo::Chain => "chain".into(),
            BcastAlgo::Tree(k) => format!("tree{k}"),
            BcastAlgo::Binomial => "binomial".into(),
        }
    }
}

/// Parent and children of `rank` in the virtual tree rooted at
/// `spec.root`.
///
/// Ranks are mapped to *virtual* ranks `v = (rank - root) mod p` so the
/// root is virtual rank 0; the returned ranks are real ranks.
pub fn tree_links(algo: BcastAlgo, rank: RankId, spec: &CollSpec) -> (Option<RankId>, Vec<RankId>) {
    let p = spec.nprocs;
    let v = (rank + p - spec.root % p) % p;
    let to_real = |vr: usize| (vr + spec.root) % p;
    let (parent, children_v): (Option<usize>, Vec<usize>) = match algo {
        BcastAlgo::Linear => {
            if v == 0 {
                (None, (1..p).collect())
            } else {
                (Some(0), Vec::new())
            }
        }
        BcastAlgo::Chain => {
            let parent = if v == 0 { None } else { Some(v - 1) };
            let children = if v + 1 < p { vec![v + 1] } else { Vec::new() };
            (parent, children)
        }
        BcastAlgo::Tree(k) => {
            assert!(k >= 2, "k-ary tree needs fan-out >= 2");
            let parent = if v == 0 { None } else { Some((v - 1) / k) };
            let children = (1..=k).map(|i| k * v + i).filter(|&c| c < p).collect();
            (parent, children)
        }
        BcastAlgo::Binomial => {
            let mut parent = None;
            let mut children = Vec::new();
            let mut mask = 1usize;
            while mask < p {
                if v & mask != 0 {
                    parent = Some(v - mask);
                    break;
                }
                if v + mask < p {
                    children.push(v + mask);
                }
                mask <<= 1;
            }
            // Binomial children are conventionally sent largest-subtree
            // first; reverse so the biggest subtree starts earliest.
            children.reverse();
            (parent, children)
        }
    };
    (
        parent.map(to_real),
        children_v.into_iter().map(to_real).collect(),
    )
}

/// Build the pipelined broadcast schedule for `rank`.
///
/// The payload (`spec.msg_bytes`) is cut into `ceil(bytes/segsize)`
/// segments. Interior ranks forward segment *s−1* to their children while
/// receiving segment *s* from their parent, so segments stream down the
/// tree.
pub fn build_bcast(algo: BcastAlgo, segsize: usize, rank: RankId, spec: &CollSpec) -> Schedule {
    assert!(segsize > 0, "segment size must be positive");
    assert!(spec.nprocs > 0);
    let p = spec.nprocs;
    let bytes = spec.msg_bytes;
    let mut sched = Schedule::new();
    if p <= 1 || bytes == 0 {
        return sched;
    }
    let nseg = bytes.div_ceil(segsize);
    let seg_bytes = |s: usize| -> usize {
        if s + 1 == nseg {
            bytes - s * segsize
        } else {
            segsize
        }
    };
    let (parent, children) = tree_links(algo, rank, spec);

    match (parent, children.is_empty()) {
        (None, _) => {
            // Root: one round per segment, sending it to every child.
            for s in 0..nseg {
                let round = Round(
                    children
                        .iter()
                        .map(|&c| Action::send(c, seg_bytes(s), vec![s as u32]))
                        .collect(),
                );
                sched.push_round(round);
            }
        }
        (Some(par), true) => {
            // Leaf: pre-post every segment receive in a single round.
            let round = Round((0..nseg).map(|s| Action::recv(par, seg_bytes(s))).collect());
            sched.push_round(round);
        }
        (Some(par), false) => {
            // Interior: pipeline — receive segment s while forwarding s-1.
            sched.push_round(Round(vec![Action::recv(par, seg_bytes(0))]));
            for s in 1..nseg {
                let mut round = Round::new();
                for &c in &children {
                    round
                        .0
                        .push(Action::send(c, seg_bytes(s - 1), vec![(s - 1) as u32]));
                }
                round.0.push(Action::recv(par, seg_bytes(s)));
                sched.push_round(round);
            }
            let last = Round(
                children
                    .iter()
                    .map(|&c| Action::send(c, seg_bytes(nseg - 1), vec![(nseg - 1) as u32]))
                    .collect(),
            );
            sched.push_round(last);
        }
    }
    sched
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(p: usize, bytes: usize) -> CollSpec {
        CollSpec::new(p, bytes)
    }

    #[test]
    fn linear_tree_links() {
        let s = spec(4, 100);
        assert_eq!(tree_links(BcastAlgo::Linear, 0, &s), (None, vec![1, 2, 3]));
        assert_eq!(tree_links(BcastAlgo::Linear, 2, &s), (Some(0), vec![]));
    }

    #[test]
    fn chain_links() {
        let s = spec(4, 100);
        assert_eq!(tree_links(BcastAlgo::Chain, 0, &s), (None, vec![1]));
        assert_eq!(tree_links(BcastAlgo::Chain, 2, &s), (Some(1), vec![3]));
        assert_eq!(tree_links(BcastAlgo::Chain, 3, &s), (Some(2), vec![]));
    }

    #[test]
    fn binary_tree_links() {
        let s = spec(7, 100);
        assert_eq!(tree_links(BcastAlgo::Tree(2), 0, &s), (None, vec![1, 2]));
        assert_eq!(tree_links(BcastAlgo::Tree(2), 1, &s), (Some(0), vec![3, 4]));
        assert_eq!(tree_links(BcastAlgo::Tree(2), 2, &s), (Some(0), vec![5, 6]));
        assert_eq!(tree_links(BcastAlgo::Tree(2), 6, &s), (Some(2), vec![]));
    }

    #[test]
    fn binomial_links() {
        let s = spec(8, 100);
        // vrank 0 children: 4, 2, 1 (largest first after reverse)
        assert_eq!(
            tree_links(BcastAlgo::Binomial, 0, &s),
            (None, vec![4, 2, 1])
        );
        assert_eq!(tree_links(BcastAlgo::Binomial, 1, &s), (Some(0), vec![]));
        assert_eq!(tree_links(BcastAlgo::Binomial, 6, &s), (Some(4), vec![7]));
    }

    #[test]
    fn nonzero_root_shifts_tree() {
        let mut s = spec(4, 100);
        s.root = 2;
        let (par, ch) = tree_links(BcastAlgo::Linear, 2, &s);
        assert_eq!(par, None);
        assert_eq!(ch, vec![3, 0, 1]);
        assert_eq!(tree_links(BcastAlgo::Linear, 0, &s).0, Some(2));
    }

    #[test]
    fn every_nonroot_has_parent_every_algo() {
        for p in [1usize, 2, 3, 5, 8, 13, 32] {
            let s = spec(p, 100);
            for algo in BcastAlgo::all() {
                for r in 0..p {
                    let (par, children) = tree_links(algo, r, &s);
                    if r == 0 {
                        assert!(par.is_none());
                    } else {
                        assert!(par.is_some(), "{:?} p={p} r={r}", algo);
                    }
                    for c in children {
                        let (cp, _) = tree_links(algo, c, &s);
                        assert_eq!(cp, Some(r), "{algo:?} p={p}: child {c} of {r}");
                    }
                }
            }
        }
    }

    #[test]
    fn segmentation_counts() {
        let s = spec(2, 100_000);
        let sched = build_bcast(BcastAlgo::Linear, 32 * 1024, 0, &s);
        // 100000 / 32768 -> 4 segments -> 4 rounds at the root.
        assert_eq!(sched.num_rounds(), 4);
        assert_eq!(sched.bytes_sent(), 100_000);
        let leaf = build_bcast(BcastAlgo::Linear, 32 * 1024, 1, &s);
        assert_eq!(leaf.num_rounds(), 1);
        assert_eq!(leaf.bytes_received(), 100_000);
    }

    #[test]
    fn interior_rank_pipelines() {
        let s = spec(3, 70_000);
        // chain: 0 -> 1 -> 2; segment 32 KiB -> 3 segments
        let mid = build_bcast(BcastAlgo::Chain, 32 * 1024, 1, &s);
        // rounds: recv s0 | send s0 + recv s1 | send s1 + recv s2 | send s2
        assert_eq!(mid.num_rounds(), 4);
        assert_eq!(mid.bytes_sent(), 70_000);
        assert_eq!(mid.bytes_received(), 70_000);
    }

    #[test]
    fn single_process_is_noop() {
        let s = spec(1, 1000);
        assert_eq!(
            build_bcast(BcastAlgo::Binomial, 1024, 0, &s).num_rounds(),
            0
        );
    }

    #[test]
    fn schedules_validate() {
        for p in [2usize, 5, 16] {
            let s = spec(p, 200_000);
            for algo in BcastAlgo::all() {
                for r in 0..p {
                    let sched = build_bcast(algo, 64 * 1024, r, &s);
                    sched.validate(r, None).expect("valid schedule");
                }
            }
        }
    }
}
