//! Gather and scatter schedule builders (linear and binomial trees).
//!
//! Rounding out ADCL's operation library: `Igather` collects one block per
//! rank at the root, `Iscatter` distributes one block per rank from the
//! root. The binomial variants aggregate blocks along the tree, so
//! interior ranks forward the blocks of their whole subtree in one
//! message.

use crate::bcast::{tree_links, BcastAlgo};
use crate::schedule::{Action, CollSpec, Round, Schedule};
use mpisim::RankId;

/// The tree shape for gather/scatter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GatherAlgo {
    /// Every rank exchanges directly with the root.
    Linear,
    /// Binomial tree; interior ranks aggregate/split subtree blocks.
    Binomial,
}

impl GatherAlgo {
    /// All implementations.
    pub fn all() -> Vec<GatherAlgo> {
        vec![GatherAlgo::Linear, GatherAlgo::Binomial]
    }

    /// Report name.
    pub fn name(self) -> &'static str {
        match self {
            GatherAlgo::Linear => "linear",
            GatherAlgo::Binomial => "binomial",
        }
    }

    fn tree(self) -> BcastAlgo {
        match self {
            GatherAlgo::Linear => BcastAlgo::Linear,
            GatherAlgo::Binomial => BcastAlgo::Binomial,
        }
    }
}

/// Ranks in `rank`'s subtree (itself included), in tree order.
fn subtree(algo: GatherAlgo, rank: RankId, spec: &CollSpec) -> Vec<RankId> {
    let (_, children) = tree_links(algo.tree(), rank, spec);
    let mut acc = vec![rank];
    for c in children {
        acc.extend(subtree(algo, c, spec));
    }
    acc
}

/// Build the gather schedule for `rank`: receive each child's aggregated
/// subtree blocks, then send the whole subtree's blocks to the parent.
/// `spec.msg_bytes` is the per-rank block size.
pub fn build_gather(algo: GatherAlgo, rank: RankId, spec: &CollSpec) -> Schedule {
    let p = spec.nprocs;
    let s = spec.msg_bytes;
    let mut sched = Schedule::new();
    if p <= 1 || s == 0 {
        return sched;
    }
    let (parent, children) = tree_links(algo.tree(), rank, spec);
    if !children.is_empty() {
        let mut round = Round::new();
        for &c in &children {
            let cnt = subtree(algo, c, spec).len();
            round.0.push(Action::recv(c, cnt * s));
        }
        sched.push_round(round);
    }
    if let Some(par) = parent {
        let blocks: Vec<u32> = subtree(algo, rank, spec)
            .iter()
            .map(|&r| r as u32)
            .collect();
        let bytes = blocks.len() * s;
        sched.push_round(Round(vec![Action::send(par, bytes, blocks)]));
    } else {
        // Root: copy its own block into the result buffer.
        sched.push_round(Round(vec![Action::copy(s)]));
    }
    sched
}

/// Build the scatter schedule for `rank`: receive this subtree's blocks
/// from the parent, then forward each child its subtree's share.
pub fn build_scatter(algo: GatherAlgo, rank: RankId, spec: &CollSpec) -> Schedule {
    let p = spec.nprocs;
    let s = spec.msg_bytes;
    let mut sched = Schedule::new();
    if p <= 1 || s == 0 {
        return sched;
    }
    let (parent, children) = tree_links(algo.tree(), rank, spec);
    if let Some(par) = parent {
        let cnt = subtree(algo, rank, spec).len();
        sched.push_round(Round(vec![Action::recv(par, cnt * s)]));
    } else {
        sched.push_round(Round(vec![Action::copy(s)]));
    }
    if !children.is_empty() {
        let mut round = Round::new();
        for &c in &children {
            let blocks: Vec<u32> = subtree(algo, c, spec).iter().map(|&r| r as u32).collect();
            let bytes = blocks.len() * s;
            round.0.push(Action::send(c, bytes, blocks));
        }
        sched.push_round(round);
    }
    sched
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify;
    use std::collections::HashSet;

    fn verify_gather(p: usize, algo: GatherAlgo, root: usize) -> Result<(), String> {
        let spec = CollSpec {
            nprocs: p,
            msg_bytes: 128,
            root,
        };
        let scheds: Vec<Schedule> = (0..p).map(|r| build_gather(algo, r, &spec)).collect();
        for (r, sc) in scheds.iter().enumerate() {
            sc.validate(r, Some(128))?;
        }
        let initial: Vec<HashSet<u32>> = (0..p).map(|r| [r as u32].into_iter().collect()).collect();
        let recv = verify::execute(&scheds, &initial)?;
        for b in 0..p as u32 {
            if b as usize != root && !recv[root].contains(&b) {
                return Err(format!("root missing block {b}"));
            }
        }
        Ok(())
    }

    fn verify_scatter(p: usize, algo: GatherAlgo, root: usize) -> Result<(), String> {
        let spec = CollSpec {
            nprocs: p,
            msg_bytes: 64,
            root,
        };
        let scheds: Vec<Schedule> = (0..p).map(|r| build_scatter(algo, r, &spec)).collect();
        for (r, sc) in scheds.iter().enumerate() {
            sc.validate(r, Some(64))?;
        }
        // Root initially holds every rank's block.
        let mut initial: Vec<HashSet<u32>> = vec![HashSet::new(); p];
        initial[root] = (0..p as u32).collect();
        let recv = verify::execute(&scheds, &initial)?;
        for (r, got) in recv.iter().enumerate() {
            if r != root && !got.contains(&(r as u32)) {
                return Err(format!("rank {r} missing its scattered block"));
            }
        }
        Ok(())
    }

    #[test]
    fn gather_all_sizes_and_roots() {
        for p in [2usize, 3, 7, 8, 16, 33] {
            for algo in GatherAlgo::all() {
                verify_gather(p, algo, 0).unwrap_or_else(|e| panic!("{algo:?} p={p}: {e}"));
                verify_gather(p, algo, p - 1)
                    .unwrap_or_else(|e| panic!("{algo:?} p={p} root={}: {e}", p - 1));
            }
        }
    }

    #[test]
    fn scatter_all_sizes_and_roots() {
        for p in [2usize, 3, 7, 8, 16, 33] {
            for algo in GatherAlgo::all() {
                verify_scatter(p, algo, 0).unwrap_or_else(|e| panic!("{algo:?} p={p}: {e}"));
                verify_scatter(p, algo, p / 2)
                    .unwrap_or_else(|e| panic!("{algo:?} p={p} root={}: {e}", p / 2));
            }
        }
    }

    #[test]
    fn binomial_aggregates_fewer_messages() {
        let spec = CollSpec::new(32, 64);
        let lin_root = build_gather(GatherAlgo::Linear, 0, &spec);
        let bin_root = build_gather(GatherAlgo::Binomial, 0, &spec);
        assert_eq!(lin_root.num_recvs(), 31);
        assert_eq!(bin_root.num_recvs(), 5); // log2(32) children
                                             // Same total volume reaches the root either way.
        assert_eq!(lin_root.bytes_received(), bin_root.bytes_received());
    }

    #[test]
    fn interior_rank_forwards_subtree() {
        let spec = CollSpec::new(8, 100);
        // vrank 4 in a binomial tree of 8 has children {5, 6} covering
        // ranks {4,5,6,7}.
        let s = build_gather(GatherAlgo::Binomial, 4, &spec);
        assert_eq!(s.bytes_sent(), 400); // its own + 3-subtree blocks
    }

    #[test]
    fn degenerate() {
        for algo in GatherAlgo::all() {
            assert_eq!(build_gather(algo, 0, &CollSpec::new(1, 8)).num_rounds(), 0);
            assert_eq!(build_scatter(algo, 0, &CollSpec::new(1, 8)).num_rounds(), 0);
        }
    }
}
