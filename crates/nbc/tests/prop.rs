//! Property-based tests: every schedule builder implements its collective
//! semantics for arbitrary process counts and message sizes, and produces
//! structurally sound schedules.

use nbc::allgather::{build_allgather, AllgatherAlgo};
use nbc::alltoall::{build_alltoall, AlltoallAlgo};
use nbc::barrier::build_barrier;
use nbc::bcast::{build_bcast, BcastAlgo};
use nbc::reduce::{build_reduce, ReduceAlgo};
use nbc::schedule::{CollSpec, Schedule};
use nbc::verify;
use proptest::prelude::*;

fn bcast_algo() -> impl Strategy<Value = BcastAlgo> {
    prop_oneof![
        Just(BcastAlgo::Linear),
        Just(BcastAlgo::Chain),
        (2usize..=5).prop_map(BcastAlgo::Tree),
        Just(BcastAlgo::Binomial),
    ]
}

fn alltoall_algo() -> impl Strategy<Value = AlltoallAlgo> {
    prop_oneof![
        Just(AlltoallAlgo::Linear),
        Just(AlltoallAlgo::Pairwise),
        Just(AlltoallAlgo::Dissemination),
    ]
}

fn allgather_algo() -> impl Strategy<Value = AllgatherAlgo> {
    prop_oneof![
        Just(AllgatherAlgo::Linear),
        Just(AllgatherAlgo::Ring),
        Just(AllgatherAlgo::Bruck),
    ]
}

fn reduce_algo() -> impl Strategy<Value = ReduceAlgo> {
    prop_oneof![
        Just(ReduceAlgo::Binomial),
        Just(ReduceAlgo::Chain),
        Just(ReduceAlgo::Linear),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Broadcast delivers every segment to every non-root rank, for any
    /// tree shape, process count, payload and root.
    #[test]
    fn bcast_semantics(
        algo in bcast_algo(),
        p in 2usize..40,
        bytes in 1usize..300_000,
        seg_kib in prop_oneof![Just(32usize), Just(64), Just(128)],
        root_sel in 0usize..40,
    ) {
        let root = root_sel % p;
        let spec = CollSpec { nprocs: p, msg_bytes: bytes, root };
        let seg = seg_kib * 1024;
        let scheds: Vec<Schedule> = (0..p).map(|r| build_bcast(algo, seg, r, &spec)).collect();
        for (r, s) in scheds.iter().enumerate() {
            prop_assert!(s.validate(r, None).is_ok());
        }
        let nseg = bytes.div_ceil(seg);
        verify::verify_bcast(&scheds, root, nseg)
            .map_err(|e| TestCaseError::fail(format!("{algo:?} p={p}: {e}")))?;
    }

    /// All-to-all delivers block (src, dst) to dst for every pair.
    #[test]
    fn alltoall_semantics(
        algo in alltoall_algo(),
        p in 2usize..48,
        bytes in 1usize..100_000,
    ) {
        let spec = CollSpec::new(p, bytes);
        let scheds: Vec<Schedule> = (0..p).map(|r| build_alltoall(algo, r, &spec)).collect();
        for (r, s) in scheds.iter().enumerate() {
            prop_assert!(s.validate(r, Some(bytes)).is_ok());
        }
        verify::verify_alltoall(&scheds)
            .map_err(|e| TestCaseError::fail(format!("{algo:?} p={p}: {e}")))?;
    }

    /// All-to-all send and receive volumes balance per rank.
    #[test]
    fn alltoall_volume_balance(algo in alltoall_algo(), p in 2usize..48, bytes in 1usize..10_000) {
        let spec = CollSpec::new(p, bytes);
        for r in 0..p {
            let s = build_alltoall(algo, r, &spec);
            prop_assert_eq!(s.bytes_sent(), s.bytes_received(), "{:?} p={} r={}", algo, p, r);
        }
    }

    /// All-gather delivers every rank's block to every rank.
    #[test]
    fn allgather_semantics(
        algo in allgather_algo(),
        p in 2usize..48,
        bytes in 1usize..50_000,
    ) {
        let spec = CollSpec::new(p, bytes);
        let scheds: Vec<Schedule> = (0..p).map(|r| build_allgather(algo, r, &spec)).collect();
        verify::verify_allgather(&scheds)
            .map_err(|e| TestCaseError::fail(format!("{algo:?} p={p}: {e}")))?;
    }

    /// Reduce combines every rank's contribution exactly once at the root.
    #[test]
    fn reduce_semantics(
        algo in reduce_algo(),
        p in 2usize..40,
        bytes in 1usize..100_000,
        root_sel in 0usize..40,
    ) {
        let root = root_sel % p;
        let spec = CollSpec { nprocs: p, msg_bytes: bytes, root };
        let scheds: Vec<Schedule> = (0..p).map(|r| build_reduce(algo, r, &spec)).collect();
        verify::verify_reduce(&scheds, root)
            .map_err(|e| TestCaseError::fail(format!("{algo:?} p={p} root={root}: {e}")))?;
    }

    /// Dissemination barriers are deadlock-free and balanced at any size.
    #[test]
    fn barrier_semantics(p in 2usize..200) {
        let spec = CollSpec::new(p, 0);
        let scheds: Vec<Schedule> = (0..p).map(|r| build_barrier(r, &spec)).collect();
        verify::verify_barrier(&scheds)
            .map_err(|e| TestCaseError::fail(format!("p={p}: {e}")))?;
    }

    /// Bruck's total traffic is exactly `s * sum(popcount-weighted blocks)`
    /// and rounds are logarithmic.
    #[test]
    fn bruck_structure(p in 2usize..128, bytes in 1usize..4096) {
        let spec = CollSpec::new(p, bytes);
        let s = build_alltoall(AlltoallAlgo::Dissemination, 0, &spec);
        let phases = (usize::BITS - (p - 1).leading_zeros()) as usize;
        prop_assert_eq!(s.num_rounds(), phases + 2);
        // Total bytes = sum over phases of (#positions with bit k set) * s.
        let expect: usize = (0..phases)
            .map(|k| (0..p).filter(|i| i >> k & 1 == 1).count() * bytes)
            .sum();
        prop_assert_eq!(s.bytes_sent(), expect);
    }
}
