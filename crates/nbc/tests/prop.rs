//! Property-based tests: every schedule builder implements its collective
//! semantics for arbitrary process counts and message sizes, and produces
//! structurally sound schedules. Runs on the in-tree `simcore::check`
//! harness (no external crates).

use nbc::allgather::{build_allgather, AllgatherAlgo};
use nbc::alltoall::{build_alltoall, AlltoallAlgo};
use nbc::barrier::build_barrier;
use nbc::bcast::{build_bcast, BcastAlgo};
use nbc::reduce::{build_reduce, ReduceAlgo};
use nbc::schedule::{CollSpec, Schedule};
use nbc::verify;
use simcore::check::{run_cases, Gen};

fn bcast_algo(g: &mut Gen) -> BcastAlgo {
    match g.usize_in(0, 4) {
        0 => BcastAlgo::Linear,
        1 => BcastAlgo::Chain,
        2 => BcastAlgo::Tree(g.usize_in(2, 6)),
        _ => BcastAlgo::Binomial,
    }
}

fn alltoall_algo(g: &mut Gen) -> AlltoallAlgo {
    g.choose(&[
        AlltoallAlgo::Linear,
        AlltoallAlgo::Pairwise,
        AlltoallAlgo::Dissemination,
    ])
}

fn allgather_algo(g: &mut Gen) -> AllgatherAlgo {
    g.choose(&[
        AllgatherAlgo::Linear,
        AllgatherAlgo::Ring,
        AllgatherAlgo::Bruck,
    ])
}

fn reduce_algo(g: &mut Gen) -> ReduceAlgo {
    g.choose(&[ReduceAlgo::Binomial, ReduceAlgo::Chain, ReduceAlgo::Linear])
}

/// Broadcast delivers every segment to every non-root rank, for any
/// tree shape, process count, payload and root.
#[test]
fn bcast_semantics() {
    run_cases("bcast_semantics", 64, |g| {
        let algo = bcast_algo(g);
        let p = g.usize_in(2, 40);
        let bytes = g.usize_in(1, 300_000);
        let seg = g.choose(&[32usize, 64, 128]) * 1024;
        let root = g.usize_in(0, 40) % p;
        let spec = CollSpec {
            nprocs: p,
            msg_bytes: bytes,
            root,
        };
        let scheds: Vec<Schedule> = (0..p).map(|r| build_bcast(algo, seg, r, &spec)).collect();
        for (r, s) in scheds.iter().enumerate() {
            assert!(s.validate(r, None).is_ok());
        }
        let nseg = bytes.div_ceil(seg);
        verify::verify_bcast(&scheds, root, nseg).unwrap_or_else(|e| panic!("{algo:?} p={p}: {e}"));
    });
}

/// All-to-all delivers block (src, dst) to dst for every pair.
#[test]
fn alltoall_semantics() {
    run_cases("alltoall_semantics", 64, |g| {
        let algo = alltoall_algo(g);
        let p = g.usize_in(2, 48);
        let bytes = g.usize_in(1, 100_000);
        let spec = CollSpec::new(p, bytes);
        let scheds: Vec<Schedule> = (0..p).map(|r| build_alltoall(algo, r, &spec)).collect();
        for (r, s) in scheds.iter().enumerate() {
            assert!(s.validate(r, Some(bytes)).is_ok());
        }
        verify::verify_alltoall(&scheds).unwrap_or_else(|e| panic!("{algo:?} p={p}: {e}"));
    });
}

/// All-to-all send and receive volumes balance per rank.
#[test]
fn alltoall_volume_balance() {
    run_cases("alltoall_volume_balance", 64, |g| {
        let algo = alltoall_algo(g);
        let p = g.usize_in(2, 48);
        let bytes = g.usize_in(1, 10_000);
        let spec = CollSpec::new(p, bytes);
        for r in 0..p {
            let s = build_alltoall(algo, r, &spec);
            assert_eq!(s.bytes_sent(), s.bytes_received(), "{algo:?} p={p} r={r}");
        }
    });
}

/// All-gather delivers every rank's block to every rank.
#[test]
fn allgather_semantics() {
    run_cases("allgather_semantics", 64, |g| {
        let algo = allgather_algo(g);
        let p = g.usize_in(2, 48);
        let bytes = g.usize_in(1, 50_000);
        let spec = CollSpec::new(p, bytes);
        let scheds: Vec<Schedule> = (0..p).map(|r| build_allgather(algo, r, &spec)).collect();
        verify::verify_allgather(&scheds).unwrap_or_else(|e| panic!("{algo:?} p={p}: {e}"));
    });
}

/// Reduce combines every rank's contribution exactly once at the root.
#[test]
fn reduce_semantics() {
    run_cases("reduce_semantics", 64, |g| {
        let algo = reduce_algo(g);
        let p = g.usize_in(2, 40);
        let bytes = g.usize_in(1, 100_000);
        let root = g.usize_in(0, 40) % p;
        let spec = CollSpec {
            nprocs: p,
            msg_bytes: bytes,
            root,
        };
        let scheds: Vec<Schedule> = (0..p).map(|r| build_reduce(algo, r, &spec)).collect();
        verify::verify_reduce(&scheds, root)
            .unwrap_or_else(|e| panic!("{algo:?} p={p} root={root}: {e}"));
    });
}

/// Dissemination barriers are deadlock-free and balanced at any size.
#[test]
fn barrier_semantics() {
    run_cases("barrier_semantics", 64, |g| {
        let p = g.usize_in(2, 200);
        let spec = CollSpec::new(p, 0);
        let scheds: Vec<Schedule> = (0..p).map(|r| build_barrier(r, &spec)).collect();
        verify::verify_barrier(&scheds).unwrap_or_else(|e| panic!("p={p}: {e}"));
    });
}

/// Bruck's total traffic is exactly `s * sum(popcount-weighted blocks)`
/// and rounds are logarithmic.
#[test]
fn bruck_structure() {
    run_cases("bruck_structure", 64, |g| {
        let p = g.usize_in(2, 128);
        let bytes = g.usize_in(1, 4096);
        let spec = CollSpec::new(p, bytes);
        let s = build_alltoall(AlltoallAlgo::Dissemination, 0, &spec);
        let phases = (usize::BITS - (p - 1).leading_zeros()) as usize;
        assert_eq!(s.num_rounds(), phases + 2);
        // Total bytes = sum over phases of (#positions with bit k set) * s.
        let expect: usize = (0..phases)
            .map(|k| (0..p).filter(|i| i >> k & 1 == 1).count() * bytes)
            .sum();
        assert_eq!(s.bytes_sent(), expect);
    });
}
