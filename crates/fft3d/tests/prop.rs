//! Property-based tests for the numerical FFT and the kernel cost model.

use fft3d::complex::Complex64;
use fft3d::cost::{fft_flops, Fft3dCost};
use fft3d::fft1d::{dft_naive, fft, ifft};
use fft3d::multi::{fft_3d, ifft_3d, Grid3};
use fft3d::patterns::{FftKernelConfig, FftPattern};
use proptest::prelude::*;

fn signal(n: usize) -> impl Strategy<Value = Vec<Complex64>> {
    prop::collection::vec(
        (-100.0f64..100.0, -100.0f64..100.0).prop_map(|(re, im)| Complex64::new(re, im)),
        n..=n,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// fft followed by ifft is the identity, for any length (radix-2 and
    /// Bluestein paths).
    #[test]
    fn roundtrip(n in 1usize..300, seed in 0u64..1_000_000) {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 11) as f64) / (1u64 << 53) as f64 * 200.0 - 100.0
        };
        let sig: Vec<Complex64> = (0..n).map(|_| Complex64::new(next(), next())).collect();
        let mut x = sig.clone();
        fft(&mut x);
        ifft(&mut x);
        let err = x.iter().zip(&sig).map(|(a, b)| (*a - *b).abs()).fold(0.0, f64::max);
        let scale = sig.iter().map(|c| c.abs()).fold(1.0, f64::max);
        prop_assert!(err < 1e-8 * scale * n as f64, "n={n} err={err}");
    }

    /// FFT matches the naive DFT for arbitrary lengths.
    #[test]
    fn matches_dft(sig in (2usize..64).prop_flat_map(signal)) {
        let expect = dft_naive(&sig);
        let mut got = sig.clone();
        fft(&mut got);
        let err = got.iter().zip(&expect).map(|(a, b)| (*a - *b).abs()).fold(0.0, f64::max);
        let scale = expect.iter().map(|c| c.abs()).fold(1.0, f64::max);
        prop_assert!(err < 1e-9 * scale * sig.len() as f64);
    }

    /// Parseval: energy is conserved up to the 1/n convention.
    #[test]
    fn parseval(sig in (2usize..128).prop_flat_map(signal)) {
        let n = sig.len() as f64;
        let time: f64 = sig.iter().map(|c| c.norm_sqr()).sum();
        let mut freq = sig.clone();
        fft(&mut freq);
        let fsum: f64 = freq.iter().map(|c| c.norm_sqr()).sum::<f64>() / n;
        prop_assert!((time - fsum).abs() <= 1e-8 * time.max(1.0));
    }

    /// 3-D round trip on arbitrary (small) grids, serial and threaded.
    #[test]
    fn roundtrip_3d(nx in 1usize..9, ny in 1usize..9, nz in 1usize..9, threads in 1usize..4) {
        let g = Grid3::from_fn(nx, ny, nz, |x, y, z| {
            Complex64::new((x * 7 + y * 3 + z) as f64 * 0.25 - 1.0, (x + y + z) as f64 * 0.5)
        });
        let mut t = g.clone();
        fft_3d(&mut t, threads);
        ifft_3d(&mut t, threads);
        let err = t.data.iter().zip(&g.data).map(|(a, b)| (*a - *b).abs()).fold(0.0, f64::max);
        prop_assert!(err < 1e-8, "grid {nx}x{ny}x{nz}: {err}");
    }

    /// FFT flop counts are monotone in n.
    #[test]
    fn flops_monotone(a in 2usize..100_000, b in 2usize..100_000) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(fft_flops(lo) <= fft_flops(hi));
    }

    /// Kernel tile accounting: tiles cover all planes, message sizes are
    /// positive and proportional to tile size.
    #[test]
    fn kernel_tiling_consistent(
        n in 16usize..512,
        planes in 1usize..64,
        tile in 1usize..16,
        p in 2usize..512,
    ) {
        let cfg = FftKernelConfig {
            n,
            planes_per_rank: planes,
            iters: 1,
            tile,
            progress_per_tile: 1,
            reps: 1,
            placement: netmodel::Placement::Block,
        };
        for pattern in FftPattern::all() {
            let ntiles = cfg.ntiles(pattern);
            let (_, tp) = pattern.window_tile(cfg.tile);
            let tp = tp.min(planes).max(1);
            prop_assert!(ntiles * tp >= planes, "{pattern:?}: tiles must cover planes");
            prop_assert!(cfg.tile_msg_bytes(pattern, p) >= 1);
        }
    }

    /// Cost model scales: twice the planes, twice the 2-D time.
    #[test]
    fn cost_linear_in_planes(n in 8usize..256, p in 2usize..128) {
        let c = Fft3dCost { n, p, gflops: 2.0 };
        let one = c.planes_2d_time(1);
        let four = c.planes_2d_time(4);
        // Each value rounds to whole nanoseconds independently.
        prop_assert!(four.as_nanos().abs_diff(one.as_nanos() * 4) <= 4);
    }
}
