//! Property-based tests for the numerical FFT and the kernel cost model,
//! on the in-tree `simcore::check` harness (no external crates).

use fft3d::complex::Complex64;
use fft3d::cost::{fft_flops, Fft3dCost};
use fft3d::fft1d::{dft_naive, fft, ifft};
use fft3d::multi::{fft_3d, ifft_3d, Grid3};
use fft3d::patterns::{FftKernelConfig, FftPattern};
use simcore::check::{run_cases, Gen};

fn signal(g: &mut Gen, n: usize) -> Vec<Complex64> {
    (0..n)
        .map(|_| Complex64::new(g.f64_in(-100.0, 100.0), g.f64_in(-100.0, 100.0)))
        .collect()
}

/// fft followed by ifft is the identity, for any length (radix-2 and
/// Bluestein paths).
#[test]
fn roundtrip() {
    run_cases("roundtrip", 48, |g| {
        let n = g.usize_in(1, 300);
        let sig = signal(g, n);
        let mut x = sig.clone();
        fft(&mut x);
        ifft(&mut x);
        let err = x
            .iter()
            .zip(&sig)
            .map(|(a, b)| (*a - *b).abs())
            .fold(0.0, f64::max);
        let scale = sig.iter().map(|c| c.abs()).fold(1.0, f64::max);
        assert!(err < 1e-8 * scale * n as f64, "n={n} err={err}");
    });
}

/// FFT matches the naive DFT for arbitrary lengths.
#[test]
fn matches_dft() {
    run_cases("matches_dft", 48, |g| {
        let n = g.usize_in(2, 64);
        let sig = signal(g, n);
        let expect = dft_naive(&sig);
        let mut got = sig.clone();
        fft(&mut got);
        let err = got
            .iter()
            .zip(&expect)
            .map(|(a, b)| (*a - *b).abs())
            .fold(0.0, f64::max);
        let scale = expect.iter().map(|c| c.abs()).fold(1.0, f64::max);
        assert!(err < 1e-9 * scale * sig.len() as f64);
    });
}

/// Parseval: energy is conserved up to the 1/n convention.
#[test]
fn parseval() {
    run_cases("parseval", 48, |g| {
        let n = g.usize_in(2, 128);
        let sig = signal(g, n);
        let nf = sig.len() as f64;
        let time: f64 = sig.iter().map(|c| c.norm_sqr()).sum();
        let mut freq = sig.clone();
        fft(&mut freq);
        let fsum: f64 = freq.iter().map(|c| c.norm_sqr()).sum::<f64>() / nf;
        assert!((time - fsum).abs() <= 1e-8 * time.max(1.0));
    });
}

/// 3-D round trip on arbitrary (small) grids, serial and threaded.
#[test]
fn roundtrip_3d() {
    run_cases("roundtrip_3d", 48, |g| {
        let nx = g.usize_in(1, 9);
        let ny = g.usize_in(1, 9);
        let nz = g.usize_in(1, 9);
        let threads = g.usize_in(1, 4);
        let grid = Grid3::from_fn(nx, ny, nz, |x, y, z| {
            Complex64::new(
                (x * 7 + y * 3 + z) as f64 * 0.25 - 1.0,
                (x + y + z) as f64 * 0.5,
            )
        });
        let mut t = grid.clone();
        fft_3d(&mut t, threads);
        ifft_3d(&mut t, threads);
        let err = t
            .data
            .iter()
            .zip(&grid.data)
            .map(|(a, b)| (*a - *b).abs())
            .fold(0.0, f64::max);
        assert!(err < 1e-8, "grid {nx}x{ny}x{nz}: {err}");
    });
}

/// FFT flop counts are monotone in n.
#[test]
fn flops_monotone() {
    run_cases("flops_monotone", 128, |g| {
        let a = g.usize_in(2, 100_000);
        let b = g.usize_in(2, 100_000);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        assert!(fft_flops(lo) <= fft_flops(hi));
    });
}

/// Kernel tile accounting: tiles cover all planes, message sizes are
/// positive and proportional to tile size.
#[test]
fn kernel_tiling_consistent() {
    run_cases("kernel_tiling_consistent", 128, |g| {
        let n = g.usize_in(16, 512);
        let planes = g.usize_in(1, 64);
        let tile = g.usize_in(1, 16);
        let p = g.usize_in(2, 512);
        let cfg = FftKernelConfig {
            n,
            planes_per_rank: planes,
            iters: 1,
            tile,
            progress_per_tile: 1,
            reps: 1,
            placement: netmodel::Placement::Block,
        };
        for pattern in FftPattern::all() {
            let ntiles = cfg.ntiles(pattern);
            let (_, tp) = pattern.window_tile(cfg.tile);
            let tp = tp.min(planes).max(1);
            assert!(
                ntiles * tp >= planes,
                "{pattern:?}: tiles must cover planes"
            );
            assert!(cfg.tile_msg_bytes(pattern, p) >= 1);
        }
    });
}

/// Cost model scales: twice the planes, twice the 2-D time.
#[test]
fn cost_linear_in_planes() {
    run_cases("cost_linear_in_planes", 128, |g| {
        let n = g.usize_in(8, 256);
        let p = g.usize_in(2, 128);
        let c = Fft3dCost { n, p, gflops: 2.0 };
        let one = c.planes_2d_time(1);
        let four = c.planes_2d_time(4);
        // Each value rounds to whole nanoseconds independently.
        assert!(four.as_nanos().abs_diff(one.as_nanos() * 4) <= 4);
    });
}
