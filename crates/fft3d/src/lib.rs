//! `fft3d` — a multi-dimensional Fast Fourier Transform and the paper's
//! 3-D FFT application kernel.
//!
//! The paper's application benchmark (§IV-B, adopted from Hoefler et al.,
//! SPAA'08) computes a 3-D FFT distributed over the last dimension and
//! overlaps the distributed transpose (an all-to-all) with the per-plane
//! transforms, in four communication patterns: *pipelined*, *tiled*,
//! *windowed* and *window-tiled*.
//!
//! This crate provides both halves of that experiment:
//!
//! * a **real FFT library** ([`complex`], [`fft1d`], [`multi`]) — an
//!   iterative radix-2 transform with Bluestein's algorithm for arbitrary
//!   sizes, 2-D/3-D row-column transforms, and an optional multi-threaded
//!   driver — used for numerical validation and to calibrate the compute
//!   cost model, and
//! * the **simulated application kernel** ([`patterns`]) — the four
//!   communication patterns expressed as ADCL scripts whose compute phases
//!   are sized by the FFT [`cost`] model, runnable on any simulated
//!   platform with LibNBC-pinned, blocking-MPI or ADCL-tuned all-to-alls.

pub mod complex;
pub mod cost;
pub mod fft1d;
pub mod multi;
pub mod patterns;
pub mod pencil;

pub use complex::Complex64;
pub use fft1d::{dft_naive, fft, ifft};
pub use multi::{fft_2d, fft_3d, ifft_3d, Grid3};
pub use patterns::{FftKernelConfig, FftMode, FftPattern};
pub use pencil::{run_pencil, PencilConfig, PencilResult};
