//! A minimal double-precision complex number type.
//!
//! Implemented here rather than pulling in a numerics crate: the FFT needs
//! only arithmetic, conjugation and `exp(iθ)`.

use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` components.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex64 {
    /// Zero.
    pub const ZERO: Complex64 = Complex64 { re: 0.0, im: 0.0 };
    /// Multiplicative identity.
    pub const ONE: Complex64 = Complex64 { re: 1.0, im: 0.0 };
    /// The imaginary unit.
    pub const I: Complex64 = Complex64 { re: 0.0, im: 1.0 };

    /// Construct from components.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Complex64 {
        Complex64 { re, im }
    }

    /// `e^(i θ)` — a point on the unit circle.
    #[inline]
    pub fn cis(theta: f64) -> Complex64 {
        Complex64 {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Complex64 {
        Complex64 {
            re: self.re,
            im: -self.im,
        }
    }

    /// Squared magnitude.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude.
    #[inline]
    pub fn abs(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Scale by a real factor.
    #[inline]
    pub fn scale(self, s: f64) -> Complex64 {
        Complex64 {
            re: self.re * s,
            im: self.im * s,
        }
    }
}

impl Add for Complex64 {
    type Output = Complex64;
    #[inline]
    fn add(self, o: Complex64) -> Complex64 {
        Complex64::new(self.re + o.re, self.im + o.im)
    }
}

impl AddAssign for Complex64 {
    #[inline]
    fn add_assign(&mut self, o: Complex64) {
        self.re += o.re;
        self.im += o.im;
    }
}

impl Sub for Complex64 {
    type Output = Complex64;
    #[inline]
    fn sub(self, o: Complex64) -> Complex64 {
        Complex64::new(self.re - o.re, self.im - o.im)
    }
}

impl SubAssign for Complex64 {
    #[inline]
    fn sub_assign(&mut self, o: Complex64) {
        self.re -= o.re;
        self.im -= o.im;
    }
}

impl Mul for Complex64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, o: Complex64) -> Complex64 {
        Complex64::new(
            self.re * o.re - self.im * o.im,
            self.re * o.im + self.im * o.re,
        )
    }
}

impl MulAssign for Complex64 {
    #[inline]
    fn mul_assign(&mut self, o: Complex64) {
        *self = *self * o;
    }
}

impl Div for Complex64 {
    type Output = Complex64;
    #[inline]
    fn div(self, o: Complex64) -> Complex64 {
        let d = o.norm_sqr();
        Complex64::new(
            (self.re * o.re + self.im * o.im) / d,
            (self.im * o.re - self.re * o.im) / d,
        )
    }
}

impl Neg for Complex64 {
    type Output = Complex64;
    #[inline]
    fn neg(self) -> Complex64 {
        Complex64::new(-self.re, -self.im)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Complex64, b: Complex64) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn arithmetic() {
        let a = Complex64::new(1.0, 2.0);
        let b = Complex64::new(3.0, -1.0);
        assert!(close(a + b, Complex64::new(4.0, 1.0)));
        assert!(close(a - b, Complex64::new(-2.0, 3.0)));
        assert!(close(a * b, Complex64::new(5.0, 5.0)));
        assert!(close((a * b) / b, a));
        assert!(close(-a, Complex64::new(-1.0, -2.0)));
    }

    #[test]
    fn i_squared_is_minus_one() {
        assert!(close(Complex64::I * Complex64::I, -Complex64::ONE));
    }

    #[test]
    fn cis_is_unit() {
        for k in 0..16 {
            let z = Complex64::cis(k as f64 * 0.5);
            assert!((z.abs() - 1.0).abs() < 1e-12);
        }
        assert!(close(Complex64::cis(0.0), Complex64::ONE));
        assert!(close(
            Complex64::cis(std::f64::consts::FRAC_PI_2),
            Complex64::I
        ));
    }

    #[test]
    fn conj_and_norm() {
        let a = Complex64::new(3.0, 4.0);
        assert_eq!(a.norm_sqr(), 25.0);
        assert_eq!(a.abs(), 5.0);
        assert!(close(a * a.conj(), Complex64::new(25.0, 0.0)));
    }
}
