//! FFT compute cost model.
//!
//! The simulated application kernel needs realistic compute durations for
//! its tiles. We use the standard operation count of a radix-2 complex FFT
//! — `5 n log₂ n` floating-point operations for length `n` — and a
//! platform's per-core GFLOP/s rate to convert to time. This is the same
//! first-order model FFTW's own planning literature uses for comparing
//! machine performance ("mflops" = `5 n log₂ n / time`).

use simcore::SimTime;

/// Bytes per complex sample (two `f64`).
pub const BYTES_PER_POINT: usize = 16;

/// Floating-point operations of a 1-D complex FFT of length `n`.
pub fn fft_flops(n: usize) -> f64 {
    if n <= 1 {
        return 0.0;
    }
    5.0 * n as f64 * (n as f64).log2()
}

/// Flops of a 2-D `n × n` plane transform (n row FFTs + n column FFTs).
pub fn plane_flops(n: usize) -> f64 {
    2.0 * n as f64 * fft_flops(n)
}

/// Compute-time for `flops` at `gflops` GFLOP/s.
pub fn flops_time(flops: f64, gflops: f64) -> SimTime {
    assert!(gflops > 0.0);
    SimTime::from_secs_f64(flops / (gflops * 1e9))
}

/// Parameters of the distributed 3-D FFT workload: an `n³` complex grid
/// decomposed over `p` processes along z.
#[derive(Debug, Clone, Copy)]
pub struct Fft3dCost {
    /// Grid extent per dimension.
    pub n: usize,
    /// Number of processes.
    pub p: usize,
    /// Per-core compute rate in GFLOP/s.
    pub gflops: f64,
}

impl Fft3dCost {
    /// Planes owned by each process (rounded up).
    pub fn local_planes(&self) -> usize {
        self.n.div_ceil(self.p).max(1)
    }

    /// Compute time for the 2-D transforms of `planes` local planes.
    pub fn planes_2d_time(&self, planes: usize) -> SimTime {
        flops_time(planes as f64 * plane_flops(self.n), self.gflops)
    }

    /// Compute time for this process's share of the z-direction 1-D FFTs
    /// corresponding to `planes` worth of redistributed data.
    ///
    /// After the transpose each process owns `n²/p` pencils of length `n`;
    /// a tile of `planes` planes contributes `planes/local_planes` of that.
    pub fn pencils_z_time(&self, planes: usize) -> SimTime {
        let pencils_total = self.n as f64 * self.n as f64 / self.p as f64;
        let share = planes as f64 / self.local_planes() as f64;
        flops_time(pencils_total * share * fft_flops(self.n), self.gflops)
    }

    /// All-to-all message size per process pair for a tile of `planes`
    /// planes: the tile holds `planes · n²` points, scattered evenly over
    /// `p` peers.
    pub fn tile_msg_bytes(&self, planes: usize) -> usize {
        let points = planes * self.n * self.n;
        (points * BYTES_PER_POINT / self.p).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flop_counts() {
        assert_eq!(fft_flops(1), 0.0);
        assert_eq!(fft_flops(8), 5.0 * 8.0 * 3.0);
        assert_eq!(plane_flops(8), 2.0 * 8.0 * fft_flops(8));
    }

    #[test]
    fn time_conversion() {
        // 1 GFLOP at 2 GFLOP/s = 0.5 s.
        assert_eq!(flops_time(1e9, 2.0), SimTime::from_millis(500));
    }

    #[test]
    fn workload_shapes() {
        let c = Fft3dCost {
            n: 256,
            p: 32,
            gflops: 2.0,
        };
        assert_eq!(c.local_planes(), 8);
        // Full local 2-D pass beats a single plane by exactly 8x.
        assert_eq!(
            c.planes_2d_time(8).as_nanos(),
            c.planes_2d_time(1).as_nanos() * 8
        );
        // Message sizes scale linearly with tile size.
        assert_eq!(c.tile_msg_bytes(2), 2 * c.tile_msg_bytes(1));
        // A full tile redistribution moves n^2*planes*16/p bytes per pair.
        assert_eq!(c.tile_msg_bytes(1), 256 * 256 * 16 / 32);
    }

    #[test]
    fn z_share_sums_to_whole() {
        let c = Fft3dCost {
            n: 64,
            p: 8,
            gflops: 1.0,
        };
        let whole = c.pencils_z_time(c.local_planes());
        let halves = c.pencils_z_time(c.local_planes() / 2);
        assert_eq!(whole.as_nanos(), halves.as_nanos() * 2);
    }

    #[test]
    fn uneven_process_counts_dont_panic() {
        // The paper uses 160, 358, 500 processes with grids that do not
        // divide evenly.
        for p in [160usize, 358, 500, 1024] {
            let c = Fft3dCost {
                n: 320,
                p,
                gflops: 1.5,
            };
            assert!(c.local_planes() >= 1);
            assert!(c.tile_msg_bytes(1) >= 1);
            assert!(c.planes_2d_time(1) > SimTime::ZERO);
        }
    }
}
