//! Multi-dimensional FFTs via the row-column method, with an optional
//! multi-threaded driver.
//!
//! A 3-D transform of an `nx × ny × nz` grid applies 1-D FFTs along each
//! axis in turn; the z-axis pass is exactly the step that the distributed
//! kernel performs *after* the all-to-all transpose, so this module is also
//! the ground truth for what the simulated application kernel computes.

use crate::complex::Complex64;
use crate::fft1d::{fft, ifft};

/// A dense 3-D complex grid in row-major (`x` fastest) order.
#[derive(Debug, Clone, PartialEq)]
pub struct Grid3 {
    /// Extent in x.
    pub nx: usize,
    /// Extent in y.
    pub ny: usize,
    /// Extent in z.
    pub nz: usize,
    /// `nx * ny * nz` samples, index `x + nx*(y + ny*z)`.
    pub data: Vec<Complex64>,
}

impl Grid3 {
    /// An all-zero grid.
    pub fn zeros(nx: usize, ny: usize, nz: usize) -> Grid3 {
        Grid3 {
            nx,
            ny,
            nz,
            data: vec![Complex64::ZERO; nx * ny * nz],
        }
    }

    /// Build from a function of the coordinates.
    pub fn from_fn(
        nx: usize,
        ny: usize,
        nz: usize,
        mut f: impl FnMut(usize, usize, usize) -> Complex64,
    ) -> Grid3 {
        let mut g = Grid3::zeros(nx, ny, nz);
        for z in 0..nz {
            for y in 0..ny {
                for x in 0..nx {
                    g.data[x + nx * (y + ny * z)] = f(x, y, z);
                }
            }
        }
        g
    }

    /// Sample accessor.
    #[inline]
    pub fn at(&self, x: usize, y: usize, z: usize) -> Complex64 {
        self.data[x + self.nx * (y + self.ny * z)]
    }

    /// Mutable sample accessor.
    #[inline]
    pub fn at_mut(&mut self, x: usize, y: usize, z: usize) -> &mut Complex64 {
        &mut self.data[x + self.nx * (y + self.ny * z)]
    }
}

/// 2-D FFT of an `nx × ny` plane stored row-major (`x` fastest).
pub fn fft_2d(data: &mut [Complex64], nx: usize, ny: usize) {
    fft_2d_scratch(data, nx, ny, &mut Vec::new());
}

/// [`fft_2d`] with a caller-provided column scratch buffer, so a pass over
/// many planes (one 3-D transform) reuses one allocation per worker
/// instead of allocating a fresh column per plane.
pub fn fft_2d_scratch(data: &mut [Complex64], nx: usize, ny: usize, scratch: &mut Vec<Complex64>) {
    assert_eq!(data.len(), nx * ny);
    // Rows (x direction).
    for row in data.chunks_exact_mut(nx) {
        fft(row);
    }
    // Columns (y direction): gather, transform, scatter.
    scratch.clear();
    scratch.resize(ny, Complex64::ZERO);
    let col = &mut scratch[..];
    for x in 0..nx {
        for y in 0..ny {
            col[y] = data[x + nx * y];
        }
        fft(col);
        for y in 0..ny {
            data[x + nx * y] = col[y];
        }
    }
}

fn z_pass(g: &mut Grid3, inverse: bool) {
    let (nx, ny, nz) = (g.nx, g.ny, g.nz);
    let mut pencil = vec![Complex64::ZERO; nz];
    for y in 0..ny {
        for x in 0..nx {
            for (z, slot) in pencil.iter_mut().enumerate() {
                *slot = g.data[x + nx * (y + ny * z)];
            }
            if inverse {
                ifft(&mut pencil);
            } else {
                fft(&mut pencil);
            }
            for (z, slot) in pencil.iter().enumerate() {
                g.data[x + nx * (y + ny * z)] = *slot;
            }
        }
    }
}

/// Forward 3-D FFT using `threads` worker threads for the plane passes
/// (1 = serial).
pub fn fft_3d(g: &mut Grid3, threads: usize) {
    let (nx, ny) = (g.nx, g.ny);
    plane_pass(g, threads, |plane, scratch| {
        fft_2d_scratch(plane, nx, ny, scratch)
    });
    z_pass(g, false);
}

/// Inverse 3-D FFT (exact inverse of [`fft_3d`], including scaling).
pub fn ifft_3d(g: &mut Grid3, threads: usize) {
    let (nx, ny) = (g.nx, g.ny);
    z_pass(g, true);
    plane_pass(g, threads, move |plane, scratch| {
        // Inverse 2-D: rows then columns with ifft.
        for row in plane.chunks_exact_mut(nx) {
            ifft(row);
        }
        scratch.clear();
        scratch.resize(ny, Complex64::ZERO);
        let col = &mut scratch[..];
        for x in 0..nx {
            for y in 0..ny {
                col[y] = plane[x + nx * y];
            }
            ifft(col);
            for y in 0..ny {
                plane[x + nx * y] = col[y];
            }
        }
    });
}

/// Apply `f` to every z-plane, fanning planes out over `threads` workers
/// using `std::thread::scope` (no external crates needed for scoped
/// borrows since Rust 1.63). Each worker owns one scratch vector passed to
/// every invocation of `f`, so the column gather inside the 2-D transforms
/// costs one allocation per worker, not one per plane.
fn plane_pass(
    g: &mut Grid3,
    threads: usize,
    f: impl Fn(&mut [Complex64], &mut Vec<Complex64>) + Sync,
) {
    let plane_len = g.nx * g.ny;
    let planes: Vec<&mut [Complex64]> = g.data.chunks_exact_mut(plane_len).collect();
    if threads <= 1 || planes.len() <= 1 {
        let mut scratch = Vec::new();
        for p in planes {
            f(p, &mut scratch);
        }
        return;
    }
    let nworkers = threads.min(planes.len());
    // Round-robin planes across workers.
    let mut buckets: Vec<Vec<&mut [Complex64]>> = (0..nworkers).map(|_| Vec::new()).collect();
    for (i, p) in planes.into_iter().enumerate() {
        buckets[i % nworkers].push(p);
    }
    std::thread::scope(|scope| {
        for bucket in buckets {
            scope.spawn(|| {
                let mut scratch = Vec::new();
                for p in bucket {
                    f(p, &mut scratch);
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fft1d::dft_naive;
    use std::f64::consts::PI;

    fn rng_grid(nx: usize, ny: usize, nz: usize, seed: u64) -> Grid3 {
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 11) as f64) / (1u64 << 53) as f64 - 0.5
        };
        Grid3::from_fn(nx, ny, nz, |_, _, _| Complex64::new(next(), next()))
    }

    fn max_err(a: &[Complex64], b: &[Complex64]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (*x - *y).abs())
            .fold(0.0, f64::max)
    }

    /// Naive 3-D DFT for small grids.
    fn dft3_naive(g: &Grid3) -> Vec<Complex64> {
        let (nx, ny, nz) = (g.nx, g.ny, g.nz);
        let mut out = vec![Complex64::ZERO; nx * ny * nz];
        for kz in 0..nz {
            for ky in 0..ny {
                for kx in 0..nx {
                    let mut acc = Complex64::ZERO;
                    for z in 0..nz {
                        for y in 0..ny {
                            for x in 0..nx {
                                let theta = -2.0
                                    * PI
                                    * ((kx * x) as f64 / nx as f64
                                        + (ky * y) as f64 / ny as f64
                                        + (kz * z) as f64 / nz as f64);
                                acc += g.at(x, y, z) * Complex64::cis(theta);
                            }
                        }
                    }
                    out[kx + nx * (ky + ny * kz)] = acc;
                }
            }
        }
        out
    }

    #[test]
    fn fft2d_matches_naive_on_separable_grid() {
        // 1xN plane reduces to a 1-D DFT.
        let n = 16;
        let mut state = 3u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 11) as f64) / (1u64 << 53) as f64
        };
        let row: Vec<Complex64> = (0..n).map(|_| Complex64::new(next(), next())).collect();
        let expect = dft_naive(&row);
        let mut plane = row.clone();
        fft_2d(&mut plane, n, 1);
        assert!(max_err(&plane, &expect) < 1e-9);
    }

    #[test]
    fn fft3d_matches_naive() {
        for (nx, ny, nz) in [(4usize, 4usize, 4usize), (8, 4, 2), (3, 5, 2)] {
            let g = rng_grid(nx, ny, nz, 11);
            let expect = dft3_naive(&g);
            let mut got = g.clone();
            fft_3d(&mut got, 1);
            assert!(
                max_err(&got.data, &expect) < 1e-8,
                "{nx}x{ny}x{nz}: {}",
                max_err(&got.data, &expect)
            );
        }
    }

    #[test]
    fn roundtrip_3d() {
        let g = rng_grid(8, 8, 8, 21);
        let mut x = g.clone();
        fft_3d(&mut x, 1);
        ifft_3d(&mut x, 1);
        assert!(max_err(&x.data, &g.data) < 1e-9);
    }

    #[test]
    fn threaded_matches_serial() {
        let g = rng_grid(16, 16, 8, 33);
        let mut serial = g.clone();
        fft_3d(&mut serial, 1);
        for threads in [2usize, 4, 7] {
            let mut par = g.clone();
            fft_3d(&mut par, threads);
            assert!(
                max_err(&par.data, &serial.data) < 1e-12,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn plane_wave_is_single_bin() {
        let (nx, ny, nz) = (8usize, 8usize, 8usize);
        let (kx, ky, kz) = (2usize, 3usize, 5usize);
        let mut g = Grid3::from_fn(nx, ny, nz, |x, y, z| {
            Complex64::cis(
                2.0 * PI
                    * ((kx * x) as f64 / nx as f64
                        + (ky * y) as f64 / ny as f64
                        + (kz * z) as f64 / nz as f64),
            )
        });
        fft_3d(&mut g, 1);
        let total = (nx * ny * nz) as f64;
        for z in 0..nz {
            for y in 0..ny {
                for x in 0..nx {
                    let v = g.at(x, y, z).abs();
                    if (x, y, z) == (kx, ky, kz) {
                        assert!((v - total).abs() < 1e-6);
                    } else {
                        assert!(v < 1e-6, "leak at {x},{y},{z}: {v}");
                    }
                }
            }
        }
    }

    #[test]
    fn grid_accessors() {
        let mut g = Grid3::zeros(2, 3, 4);
        *g.at_mut(1, 2, 3) = Complex64::new(7.0, 0.0);
        assert_eq!(g.at(1, 2, 3).re, 7.0);
        assert_eq!(g.data.len(), 24);
    }
}
