//! One-dimensional FFT: iterative radix-2 with Bluestein's algorithm for
//! arbitrary lengths.

use crate::complex::Complex64;
use std::f64::consts::PI;

/// In-place forward FFT of arbitrary length.
pub fn fft(data: &mut [Complex64]) {
    transform(data, false);
}

/// In-place inverse FFT of arbitrary length (includes the `1/n` scaling).
pub fn ifft(data: &mut [Complex64]) {
    transform(data, true);
    let n = data.len();
    if n > 0 {
        let s = 1.0 / n as f64;
        for x in data.iter_mut() {
            *x = x.scale(s);
        }
    }
}

/// Naive O(n²) DFT, used as the correctness oracle in tests.
pub fn dft_naive(data: &[Complex64]) -> Vec<Complex64> {
    let n = data.len();
    (0..n)
        .map(|k| {
            let mut acc = Complex64::ZERO;
            for (j, &x) in data.iter().enumerate() {
                let theta = -2.0 * PI * (k * j) as f64 / n as f64;
                acc += x * Complex64::cis(theta);
            }
            acc
        })
        .collect()
}

fn transform(data: &mut [Complex64], inverse: bool) {
    let n = data.len();
    if n <= 1 {
        return;
    }
    if n.is_power_of_two() {
        radix2(data, inverse);
    } else {
        bluestein(data, inverse);
    }
}

/// Iterative radix-2 Cooley–Tukey with bit-reversal permutation.
fn radix2(data: &mut [Complex64], inverse: bool) {
    let n = data.len();
    debug_assert!(n.is_power_of_two());
    let levels = n.trailing_zeros();
    // Bit reversal permutation.
    for i in 0..n {
        let j = (i.reverse_bits() >> (usize::BITS - levels)) & (n - 1);
        if j > i {
            data.swap(i, j);
        }
    }
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut size = 2;
    while size <= n {
        let half = size / 2;
        // Twiddle increment: exp(sign * 2πi / size) = exp(sign * πi / half).
        let w_unit = Complex64::cis(sign * PI / half as f64);
        for start in (0..n).step_by(size) {
            let mut w = Complex64::ONE;
            for k in 0..half {
                let a = data[start + k];
                let b = data[start + k + half] * w;
                data[start + k] = a + b;
                data[start + k + half] = a - b;
                w *= w_unit;
            }
        }
        size *= 2;
    }
}

/// Bluestein's chirp-z transform: expresses a DFT of arbitrary length `n`
/// as a convolution, evaluated with radix-2 FFTs of length `m >= 2n-1`.
fn bluestein(data: &mut [Complex64], inverse: bool) {
    let n = data.len();
    let sign = if inverse { 1.0 } else { -1.0 };
    // Chirp: w[j] = exp(sign * i * π * j² / n); use j² mod 2n to avoid
    // catastrophic angle growth.
    let chirp: Vec<Complex64> = (0..n)
        .map(|j| {
            let jj = (j as u128 * j as u128) % (2 * n as u128);
            Complex64::cis(sign * PI * jj as f64 / n as f64)
        })
        .collect();
    let m = (2 * n - 1).next_power_of_two();
    let mut a = vec![Complex64::ZERO; m];
    let mut b = vec![Complex64::ZERO; m];
    for j in 0..n {
        a[j] = data[j] * chirp[j];
    }
    b[0] = chirp[0].conj();
    for j in 1..n {
        b[j] = chirp[j].conj();
        b[m - j] = chirp[j].conj();
    }
    radix2(&mut a, false);
    radix2(&mut b, false);
    for j in 0..m {
        a[j] *= b[j];
    }
    radix2(&mut a, true);
    let scale = 1.0 / m as f64;
    for j in 0..n {
        data[j] = a[j].scale(scale) * chirp[j];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(n: usize, seed: u64) -> Vec<Complex64> {
        let mut rng = simple_rng(seed);
        (0..n)
            .map(|_| Complex64::new(rng() * 2.0 - 1.0, rng() * 2.0 - 1.0))
            .collect()
    }

    fn simple_rng(mut state: u64) -> impl FnMut() -> f64 {
        move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64) / (1u64 << 53) as f64
        }
    }

    fn max_err(a: &[Complex64], b: &[Complex64]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (*x - *y).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn matches_naive_dft_power_of_two() {
        for n in [1usize, 2, 4, 8, 16, 64, 256] {
            let input = seq(n, 42);
            let expect = dft_naive(&input);
            let mut got = input.clone();
            fft(&mut got);
            assert!(max_err(&got, &expect) < 1e-9 * n as f64, "n={n}");
        }
    }

    #[test]
    fn matches_naive_dft_arbitrary_sizes() {
        for n in [3usize, 5, 6, 7, 12, 15, 17, 100, 127] {
            let input = seq(n, 7);
            let expect = dft_naive(&input);
            let mut got = input.clone();
            fft(&mut got);
            assert!(max_err(&got, &expect) < 1e-8 * n as f64, "n={n}");
        }
    }

    #[test]
    fn roundtrip_identity() {
        for n in [2usize, 8, 13, 100, 128, 1000] {
            let input = seq(n, 99);
            let mut x = input.clone();
            fft(&mut x);
            ifft(&mut x);
            assert!(max_err(&x, &input) < 1e-9 * n as f64, "n={n}");
        }
    }

    #[test]
    fn impulse_transforms_to_constant() {
        let mut x = vec![Complex64::ZERO; 16];
        x[0] = Complex64::ONE;
        fft(&mut x);
        for v in &x {
            assert!((*v - Complex64::ONE).abs() < 1e-12);
        }
    }

    #[test]
    fn constant_transforms_to_impulse() {
        let mut x = vec![Complex64::ONE; 8];
        fft(&mut x);
        assert!((x[0] - Complex64::new(8.0, 0.0)).abs() < 1e-12);
        for v in &x[1..] {
            assert!(v.abs() < 1e-12);
        }
    }

    #[test]
    fn parseval_energy_conserved() {
        for n in [16usize, 24, 100] {
            let input = seq(n, 5);
            let time_energy: f64 = input.iter().map(|x| x.norm_sqr()).sum();
            let mut freq = input.clone();
            fft(&mut freq);
            let freq_energy: f64 = freq.iter().map(|x| x.norm_sqr()).sum::<f64>() / n as f64;
            assert!(
                (time_energy - freq_energy).abs() < 1e-9 * time_energy.max(1.0),
                "n={n}"
            );
        }
    }

    #[test]
    fn linearity() {
        let n = 64;
        let a = seq(n, 1);
        let b = seq(n, 2);
        let sum: Vec<Complex64> = a.iter().zip(&b).map(|(x, y)| *x + *y).collect();
        let mut fa = a.clone();
        fft(&mut fa);
        let mut fb = b.clone();
        fft(&mut fb);
        let mut fs = sum.clone();
        fft(&mut fs);
        let combined: Vec<Complex64> = fa.iter().zip(&fb).map(|(x, y)| *x + *y).collect();
        assert!(max_err(&fs, &combined) < 1e-9);
    }

    #[test]
    fn frequency_shift_of_single_tone() {
        // A pure tone at bin k must transform to a (scaled) impulse at k.
        let n = 32;
        let k = 5;
        let mut x: Vec<Complex64> = (0..n)
            .map(|j| Complex64::cis(2.0 * PI * (k * j) as f64 / n as f64))
            .collect();
        fft(&mut x);
        for (i, v) in x.iter().enumerate() {
            if i == k {
                assert!((v.abs() - n as f64).abs() < 1e-9);
            } else {
                assert!(v.abs() < 1e-9, "leak at bin {i}: {}", v.abs());
            }
        }
    }

    #[test]
    fn empty_and_single() {
        let mut empty: Vec<Complex64> = vec![];
        fft(&mut empty);
        ifft(&mut empty);
        let mut one = vec![Complex64::new(3.0, -2.0)];
        fft(&mut one);
        assert_eq!(one[0], Complex64::new(3.0, -2.0));
    }
}
