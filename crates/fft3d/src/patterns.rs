//! The paper's 3-D FFT application kernel (§IV-B) as simulated ADCL
//! scripts.
//!
//! The kernel transforms an `N × N × (p · planes)` complex grid distributed
//! over `p` processes along z. Each iteration performs the per-plane 2-D
//! transforms, redistributes the grid with an all-to-all (the distributed
//! transpose), and finishes with the z-direction 1-D transforms. The
//! computation/communication sequence is subdivided into *tiles* of planes
//! and a *window* of outstanding all-to-alls (Fig. 8 of the paper):
//!
//! * **pipelined** — window 2, tile 1 (two alternating buffers),
//! * **tiled** — window 2, tile > 1 (coarser compute),
//! * **windowed** — window 3, tile 1 (more outstanding operations),
//! * **window-tiled** — window 3, tile > 1.
//!
//! Each pattern can run with the communication provided by
//!
//! * ADCL (run-time tuned non-blocking all-to-all, optionally the extended
//!   function-set that also contains blocking variants),
//! * LibNBC (fixed linear non-blocking all-to-all — its default and only
//!   implementation, as the paper notes), or
//! * blocking `MPI_Alltoall` (no overlap at all).

use crate::cost::{fft_flops, flops_time, plane_flops, BYTES_PER_POINT};
use adcl::filter::FilterKind;
use adcl::function::FunctionSet;
use adcl::runner::{Instr, Runner, Script, TuningSession};
use adcl::strategy::SelectionLogic;
use adcl::tuner::TunerConfig;
use mpisim::{NoiseConfig, World};
use nbc::schedule::CollSpec;
use netmodel::{Placement, Platform};
use simcore::SimTime;
use std::collections::VecDeque;

/// The four computation/communication interleavings of the kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FftPattern {
    /// Window 2, tile 1.
    Pipelined,
    /// Window 2, tile > 1.
    Tiled,
    /// Window 3, tile 1.
    Windowed,
    /// Window 3, tile > 1.
    WindowTiled,
}

impl FftPattern {
    /// All four patterns, in the paper's reporting order.
    pub fn all() -> Vec<FftPattern> {
        vec![
            FftPattern::Pipelined,
            FftPattern::Tiled,
            FftPattern::Windowed,
            FftPattern::WindowTiled,
        ]
    }

    /// Report name.
    pub fn name(self) -> &'static str {
        match self {
            FftPattern::Pipelined => "pipelined",
            FftPattern::Tiled => "tiled",
            FftPattern::Windowed => "windowed",
            FftPattern::WindowTiled => "window-tiled",
        }
    }

    /// `(window, tile_planes)` defaults; `tile` is the benchmark's default
    /// tile size for the tiled variants.
    pub fn window_tile(self, tile: usize) -> (usize, usize) {
        match self {
            FftPattern::Pipelined => (2, 1),
            FftPattern::Tiled => (2, tile),
            FftPattern::Windowed => (3, 1),
            FftPattern::WindowTiled => (3, tile),
        }
    }
}

/// Which communication library backs the kernel's all-to-alls.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FftMode {
    /// ADCL with the default non-blocking function-set and the given
    /// selection logic.
    Adcl(SelectionLogic),
    /// ADCL with the §IV-B extended function-set (blocking variants
    /// included).
    AdclExtended(SelectionLogic),
    /// LibNBC's single default implementation: non-blocking linear.
    LibNbc,
    /// Blocking `MPI_Alltoall`: no overlap.
    BlockingMpi,
}

impl FftMode {
    /// Report name.
    pub fn name(self) -> &'static str {
        match self {
            FftMode::Adcl(_) => "adcl",
            FftMode::AdclExtended(_) => "adcl-ext",
            FftMode::LibNbc => "libnbc",
            FftMode::BlockingMpi => "mpi-blocking",
        }
    }
}

/// Kernel workload description.
#[derive(Debug, Clone, Copy)]
pub struct FftKernelConfig {
    /// Plane extent: planes are `n × n`.
    pub n: usize,
    /// Planes owned by each process.
    pub planes_per_rank: usize,
    /// Iterations of the full 3-D FFT.
    pub iters: usize,
    /// Default tile size for the tiled patterns (the paper uses 10).
    pub tile: usize,
    /// Progress calls inserted per tile's compute phase.
    pub progress_per_tile: usize,
    /// Measurements per tested implementation.
    pub reps: usize,
    /// Rank placement policy.
    pub placement: Placement,
}

impl Default for FftKernelConfig {
    fn default() -> Self {
        FftKernelConfig {
            n: 256,
            planes_per_rank: 8,
            iters: 30,
            tile: 4,
            progress_per_tile: 2,
            reps: 3,
            placement: Placement::Block,
        }
    }
}

impl FftKernelConfig {
    /// Number of tiles for a pattern at `p` processes.
    pub fn ntiles(&self, pattern: FftPattern) -> usize {
        let (_, tile) = pattern.window_tile(self.tile);
        let tile = tile.min(self.planes_per_rank).max(1);
        self.planes_per_rank.div_ceil(tile)
    }

    /// Per-pair all-to-all message size for one tile.
    pub fn tile_msg_bytes(&self, pattern: FftPattern, p: usize) -> usize {
        let (_, tile) = pattern.window_tile(self.tile);
        let tile = tile.min(self.planes_per_rank).max(1);
        (tile * self.n * self.n * BYTES_PER_POINT / p).max(1)
    }

    /// 2-D compute time for one tile on a platform.
    pub fn tile_2d_time(&self, pattern: FftPattern, gflops: f64) -> SimTime {
        let (_, tile) = pattern.window_tile(self.tile);
        let tile = tile.min(self.planes_per_rank).max(1);
        flops_time(tile as f64 * plane_flops(self.n), gflops)
    }

    /// Order-of-magnitude estimate of one kernel run's host wall-clock
    /// cost in nanoseconds, for the serial-cutoff heuristic
    /// (`simcore::par::plan_participants`): roughly 2µs of host time per
    /// rank per tile per FFT iteration per measurement rep, the measured
    /// scale of the quick-sized kernels. Only the comparison against the
    /// ~100µs pool-handoff floor matters, so being off by a few× either
    /// way does not change any sensible decision.
    pub fn est_run_nanos(&self, pattern: FftPattern, p: usize) -> u64 {
        2_000u64
            .saturating_mul(p as u64)
            .saturating_mul(self.iters.max(1) as u64)
            .saturating_mul(self.ntiles(pattern) as u64)
            .saturating_mul(self.reps.max(1) as u64)
    }

    /// z-direction compute time attributable to one tile's redistributed
    /// data: the rank owns `n²/p` pencils of length `p · planes_per_rank`.
    pub fn tile_z_time(&self, pattern: FftPattern, p: usize, gflops: f64) -> SimTime {
        let (_, tile) = pattern.window_tile(self.tile);
        let tile = tile.min(self.planes_per_rank).max(1);
        let nz = p * self.planes_per_rank;
        let pencils = self.n as f64 * self.n as f64 / p as f64;
        let share = tile as f64 / self.planes_per_rank as f64;
        flops_time(pencils * share * fft_flops(nz), gflops)
    }
}

/// Lazy per-rank script implementing one pattern.
pub struct FftPatternScript {
    buf: VecDeque<Instr>,
    iter: usize,
    iters: usize,
    template: Vec<Instr>,
}

impl FftPatternScript {
    /// Build the script for one rank.
    pub fn new(
        cfg: &FftKernelConfig,
        pattern: FftPattern,
        p: usize,
        gflops: f64,
        op: usize,
        timer: usize,
    ) -> FftPatternScript {
        let (window, _) = pattern.window_tile(cfg.tile);
        let ntiles = cfg.ntiles(pattern);
        let window = window.min(ntiles).max(1);
        let t2d = cfg.tile_2d_time(pattern, gflops);
        let tz = cfg.tile_z_time(pattern, p, gflops);
        let chunks = cfg.progress_per_tile.max(1);
        let chunk = t2d / chunks as u64;

        let mut template = Vec::new();
        template.push(Instr::TimerStart(timer));
        for t in 0..ntiles {
            if t >= window {
                // The slot we are about to reuse must be drained first;
                // its z-FFT share can then be computed.
                template.push(Instr::Wait {
                    op,
                    slot: t % window,
                });
                template.push(Instr::Compute(tz));
            }
            for _ in 0..chunks {
                template.push(Instr::Compute(chunk));
                template.push(Instr::Progress { op });
            }
            template.push(Instr::Start {
                op,
                slot: t % window,
            });
        }
        // Drain the window.
        for t in ntiles.saturating_sub(window)..ntiles {
            template.push(Instr::Wait {
                op,
                slot: t % window,
            });
            template.push(Instr::Compute(tz));
        }
        template.push(Instr::TimerStop(timer));

        FftPatternScript {
            buf: VecDeque::new(),
            iter: 0,
            iters: cfg.iters,
            template,
        }
    }
}

impl Script for FftPatternScript {
    fn next(&mut self) -> Option<Instr> {
        if self.buf.is_empty() {
            if self.iter >= self.iters {
                return None;
            }
            self.iter += 1;
            self.buf.extend(self.template.iter().cloned());
        }
        self.buf.pop_front()
    }
}

/// Outcome of one kernel run.
#[derive(Debug, Clone)]
pub struct FftRunResult {
    /// Pattern executed.
    pub pattern: &'static str,
    /// Communication mode.
    pub mode: &'static str,
    /// Sum of per-iteration times (seconds) — what the paper plots.
    pub total_time: f64,
    /// Sum excluding the learning phase (Fig. 11's second series).
    pub post_learning_time: f64,
    /// Iteration at which the selection logic converged.
    pub converged_at: Option<usize>,
    /// Winning implementation name, if converged.
    pub winner: Option<String>,
    /// Per-iteration times.
    pub history: Vec<f64>,
    /// Number of iterations executed.
    pub iters: usize,
}

/// Run the kernel once and collect the result.
pub fn run_fft_kernel(
    platform: &Platform,
    p: usize,
    cfg: &FftKernelConfig,
    pattern: FftPattern,
    mode: FftMode,
    noise: NoiseConfig,
) -> FftRunResult {
    mpisim::worldpool::with_world(platform, p, cfg.placement, noise, |world| {
        run_fft_kernel_in(world, platform, p, cfg, pattern, mode)
    })
}

fn run_fft_kernel_in(
    world: &mut World,
    platform: &Platform,
    p: usize,
    cfg: &FftKernelConfig,
    pattern: FftPattern,
    mode: FftMode,
) -> FftRunResult {
    if world.tracing() {
        world.set_trace_label(&format!(
            "fft/{}/{}/{}/p{p}",
            platform.name,
            pattern.name(),
            mode.name()
        ));
    }
    let mut session = TuningSession::new(p);
    let msg = cfg.tile_msg_bytes(pattern, p);
    let spec = CollSpec::new(p, msg);
    let (fnset, logic) = match mode {
        FftMode::Adcl(logic) => (FunctionSet::ialltoall_default(spec), logic),
        FftMode::AdclExtended(logic) => (FunctionSet::ialltoall_extended(spec), logic),
        FftMode::LibNbc => {
            let set = FunctionSet::ialltoall_default(spec).pinned("linear");
            (set, SelectionLogic::Fixed(0))
        }
        FftMode::BlockingMpi => {
            let set = FunctionSet::ialltoall_extended(spec).pinned("linear-blocking");
            (set, SelectionLogic::Fixed(0))
        }
    };
    let op = session.add_op(
        "ialltoall",
        fnset,
        TunerConfig {
            logic,
            reps: cfg.reps,
            warmup: 1,
            filter: FilterKind::default(),
        },
    );
    let timer = session.add_timer(vec![op]);
    let scripts: Vec<Box<dyn Script>> = (0..p)
        .map(|_| {
            Box::new(FftPatternScript::new(
                cfg,
                pattern,
                p,
                platform.gflops_per_core,
                op,
                timer,
            )) as Box<dyn Script>
        })
        .collect();
    let mut runner = Runner::new(session, scripts);
    world.run(&mut runner).expect("fft kernel deadlocked");
    let s = runner.session;
    let tuner = &s.ops[op].tuner;
    let converged = tuner.converged_at();
    let winner = tuner
        .winner()
        .map(|w| s.ops[op].fnset.functions[w].name.clone());
    FftRunResult {
        pattern: pattern.name(),
        mode: mode.name(),
        total_time: s.timers[timer].total(),
        post_learning_time: s.timers[timer].total_from(converged.unwrap_or(0)),
        converged_at: converged,
        winner,
        history: s.timers[timer].history().to_vec(),
        iters: cfg.iters,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> FftKernelConfig {
        FftKernelConfig {
            n: 64,
            planes_per_rank: 4,
            iters: 12,
            tile: 2,
            progress_per_tile: 2,
            reps: 2,
            placement: Placement::Block,
        }
    }

    #[test]
    fn tile_math() {
        let cfg = small_cfg();
        assert_eq!(cfg.ntiles(FftPattern::Pipelined), 4);
        assert_eq!(cfg.ntiles(FftPattern::Tiled), 2);
        assert!(
            cfg.tile_msg_bytes(FftPattern::Tiled, 8) > cfg.tile_msg_bytes(FftPattern::Pipelined, 8)
        );
    }

    #[test]
    fn script_shape_per_iteration() {
        let cfg = small_cfg();
        let mut s = FftPatternScript::new(&cfg, FftPattern::Pipelined, 8, 2.0, 0, 0);
        let mut starts = 0;
        let mut waits = 0;
        let mut stops = 0;
        while let Some(i) = s.next() {
            match i {
                Instr::Start { .. } => starts += 1,
                Instr::Wait { .. } => waits += 1,
                Instr::TimerStop(_) => stops += 1,
                _ => {}
            }
        }
        // 4 tiles per iteration x 12 iterations.
        assert_eq!(starts, 4 * 12);
        assert_eq!(waits, 4 * 12); // every start eventually waited
        assert_eq!(stops, 12);
    }

    #[test]
    fn kernel_runs_all_patterns_libnbc() {
        let cfg = small_cfg();
        for pattern in FftPattern::all() {
            let r = run_fft_kernel(
                &Platform::whale(),
                8,
                &cfg,
                pattern,
                FftMode::LibNbc,
                NoiseConfig::none(),
            );
            assert_eq!(r.history.len(), cfg.iters, "{pattern:?}");
            assert!(r.total_time > 0.0);
        }
    }

    #[test]
    fn adcl_converges_in_kernel() {
        let cfg = small_cfg();
        let r = run_fft_kernel(
            &Platform::whale(),
            8,
            &cfg,
            FftPattern::WindowTiled,
            FftMode::Adcl(SelectionLogic::BruteForce),
            NoiseConfig::none(),
        );
        assert!(r.winner.is_some(), "3 fns x 2 reps = 6 < 12 iters");
        assert!(r.post_learning_time <= r.total_time);
    }

    #[test]
    fn blocking_mpi_slower_than_overlapped_libnbc() {
        // With real compute to hide communication behind, the blocking
        // version must not be faster than the non-blocking one by more
        // than noise (usually it is strictly slower).
        let mut cfg = small_cfg();
        cfg.iters = 8;
        let nb = run_fft_kernel(
            &Platform::whale(),
            8,
            &cfg,
            FftPattern::WindowTiled,
            FftMode::LibNbc,
            NoiseConfig::none(),
        );
        let bl = run_fft_kernel(
            &Platform::whale(),
            8,
            &cfg,
            FftPattern::WindowTiled,
            FftMode::BlockingMpi,
            NoiseConfig::none(),
        );
        assert!(
            bl.total_time >= nb.total_time * 0.95,
            "blocking {} vs non-blocking {}",
            bl.total_time,
            nb.total_time
        );
    }

    #[test]
    fn extended_set_runs() {
        let cfg = small_cfg();
        let r = run_fft_kernel(
            &Platform::whale(),
            4,
            &cfg,
            FftPattern::Pipelined,
            FftMode::AdclExtended(SelectionLogic::BruteForce),
            NoiseConfig::none(),
        );
        assert_eq!(r.history.len(), cfg.iters);
    }
}
