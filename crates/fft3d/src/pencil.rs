//! 2-D (pencil) decomposed 3-D FFT with per-communicator tuning.
//!
//! The paper's kernel (§IV-B) uses a 1-D *slab* decomposition: one global
//! all-to-all. Large machines use a 2-D *pencil* decomposition instead
//! (cf. the paper's related-work comparison with Song & Hollingsworth's
//! auto-tuned 3-D FFT): the `pr × pc` process grid performs two smaller
//! transposes — one within each *row* communicator (`pc` ranks) and one
//! within each *column* communicator (`pr` ranks).
//!
//! Each row/column communicator gets its own ADCL request and its own
//! subset timer, so all `pr + pc` operations tune **concurrently and
//! independently** — row and column transposes have different message
//! sizes and member counts and may converge to different implementations.

use crate::cost::{fft_flops, flops_time, BYTES_PER_POINT};
use adcl::filter::FilterKind;
use adcl::function::FunctionSet;
use adcl::runner::{Instr, Runner, Script, TuningSession};
use adcl::strategy::SelectionLogic;
use adcl::tuner::TunerConfig;
use mpisim::{NoiseConfig, World};
use nbc::schedule::CollSpec;
use netmodel::{Placement, Platform};
use simcore::SimTime;
use std::collections::VecDeque;

/// Pencil-decomposition workload description.
#[derive(Debug, Clone, Copy)]
pub struct PencilConfig {
    /// Grid extent per dimension (`n³` points total).
    pub n: usize,
    /// Process-grid rows (column-communicator size).
    pub pr: usize,
    /// Process-grid columns (row-communicator size).
    pub pc: usize,
    /// Iterations of the full 3-D FFT.
    pub iters: usize,
    /// Tiles per transpose stage (overlap granularity).
    pub tiles: usize,
    /// Outstanding all-to-alls per stage.
    pub window: usize,
    /// Progress calls per tile's compute phase.
    pub progress_per_tile: usize,
    /// Measurements per implementation during learning.
    pub reps: usize,
    /// Rank placement policy.
    pub placement: Placement,
}

impl Default for PencilConfig {
    fn default() -> Self {
        PencilConfig {
            n: 256,
            pr: 4,
            pc: 4,
            iters: 30,
            tiles: 4,
            window: 2,
            progress_per_tile: 2,
            reps: 3,
            placement: Placement::Block,
        }
    }
}

impl PencilConfig {
    /// Total process count.
    pub fn nprocs(&self) -> usize {
        self.pr * self.pc
    }

    /// Per-pair message size of the row transpose for one tile: the local
    /// `n³/p` points are exchanged within the `pc`-rank row communicator,
    /// split over `tiles`.
    pub fn row_msg_bytes(&self) -> usize {
        let local_points = self.n * self.n * self.n / self.nprocs();
        (local_points * BYTES_PER_POINT / self.pc / self.tiles).max(1)
    }

    /// Per-pair message size of the column transpose for one tile.
    pub fn col_msg_bytes(&self) -> usize {
        let local_points = self.n * self.n * self.n / self.nprocs();
        (local_points * BYTES_PER_POINT / self.pr / self.tiles).max(1)
    }

    /// Compute time of one 1-D FFT stage over one tile's share of the
    /// local pencils.
    pub fn stage_tile_time(&self, gflops: f64) -> SimTime {
        let pencils = (self.n * self.n) as f64 / self.nprocs() as f64;
        flops_time(pencils / self.tiles as f64 * fft_flops(self.n), gflops)
    }

    /// Row-communicator members (global ranks) for row `r`.
    pub fn row_comm(&self, r: usize) -> Vec<usize> {
        (0..self.pc).map(|c| r * self.pc + c).collect()
    }

    /// Column-communicator members for column `c`.
    pub fn col_comm(&self, c: usize) -> Vec<usize> {
        (0..self.pr).map(|r| r * self.pc + c).collect()
    }
}

/// Per-rank script: z-FFT stage, tiled row transpose (+y-FFTs), tiled
/// column transpose (+x-FFTs); the two transpose sections are bracketed by
/// their communicator's subset timer.
struct PencilScript {
    buf: VecDeque<Instr>,
    iter: usize,
    iters: usize,
    template: Vec<Instr>,
}

impl PencilScript {
    #[allow(clippy::too_many_arguments)]
    fn new(
        cfg: &PencilConfig,
        gflops: f64,
        row_op: usize,
        row_timer: usize,
        col_op: usize,
        col_timer: usize,
    ) -> PencilScript {
        let stage = cfg.stage_tile_time(gflops);
        let chunks = cfg.progress_per_tile.max(1);
        let window = cfg.window.min(cfg.tiles).max(1);
        let mut template = Vec::new();
        // Stage 1: local z-FFTs (not part of any tuned section).
        for _ in 0..cfg.tiles {
            template.push(Instr::Compute(stage));
        }
        // One tiled transpose + follow-up FFT stage.
        let mut transpose = |op: usize, timer: usize| {
            template.push(Instr::TimerStart(timer));
            for t in 0..cfg.tiles {
                if t >= window {
                    template.push(Instr::Wait {
                        op,
                        slot: t % window,
                    });
                    template.push(Instr::Compute(stage));
                }
                for _ in 0..chunks {
                    template.push(Instr::Compute(stage / chunks as u64));
                    template.push(Instr::Progress { op });
                }
                template.push(Instr::Start {
                    op,
                    slot: t % window,
                });
            }
            for t in cfg.tiles.saturating_sub(window)..cfg.tiles {
                template.push(Instr::Wait {
                    op,
                    slot: t % window,
                });
                template.push(Instr::Compute(stage));
            }
            template.push(Instr::TimerStop(timer));
        };
        transpose(row_op, row_timer);
        transpose(col_op, col_timer);
        PencilScript {
            buf: VecDeque::new(),
            iter: 0,
            iters: cfg.iters,
            template,
        }
    }
}

impl Script for PencilScript {
    fn next(&mut self) -> Option<Instr> {
        if self.buf.is_empty() {
            if self.iter >= self.iters {
                return None;
            }
            self.iter += 1;
            self.buf.extend(self.template.iter().cloned());
        }
        self.buf.pop_front()
    }
}

/// Result of one pencil-FFT run.
#[derive(Debug, Clone)]
pub struct PencilResult {
    /// Winner per row communicator (index = row).
    pub row_winners: Vec<Option<String>>,
    /// Winner per column communicator (index = column).
    pub col_winners: Vec<Option<String>>,
    /// Total time of each row communicator's transpose section (seconds).
    pub row_totals: Vec<f64>,
    /// Total time of each column communicator's transpose section.
    pub col_totals: Vec<f64>,
}

impl PencilResult {
    /// Sum of all transpose-section times (the tuned portion of the run).
    /// Note the sections of different communicators run *concurrently*;
    /// use [`PencilResult::per_rank_transpose_time`] to compare against a
    /// slab run.
    pub fn transpose_total(&self) -> f64 {
        self.row_totals.iter().sum::<f64>() + self.col_totals.iter().sum::<f64>()
    }

    /// Average transpose time experienced by one rank: every rank belongs
    /// to exactly one row and one column communicator, so its tuned
    /// sections cost the mean row total plus the mean column total.
    pub fn per_rank_transpose_time(&self) -> f64 {
        let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len().max(1) as f64;
        mean(&self.row_totals) + mean(&self.col_totals)
    }
}

/// Run the pencil kernel; every row and column communicator tunes its own
/// all-to-all under `logic` (use `SelectionLogic::Fixed(0)` for the
/// LibNBC-style linear baseline).
pub fn run_pencil(
    platform: &Platform,
    cfg: &PencilConfig,
    logic: SelectionLogic,
    noise: NoiseConfig,
) -> PencilResult {
    let p = cfg.nprocs();
    mpisim::worldpool::with_world(platform, p, cfg.placement, noise, |world| {
        run_pencil_in(world, platform, cfg, logic)
    })
}

fn run_pencil_in(
    world: &mut World,
    platform: &Platform,
    cfg: &PencilConfig,
    logic: SelectionLogic,
) -> PencilResult {
    let p = cfg.nprocs();
    if world.tracing() {
        world.set_trace_label(&format!(
            "pencil/{}/{}x{}/{logic:?}",
            platform.name, cfg.pr, cfg.pc
        ));
    }
    let mut session = TuningSession::new(p);
    let tuner_cfg = TunerConfig {
        logic,
        reps: cfg.reps,
        warmup: 1,
        filter: FilterKind::default(),
    };
    // One op + subset timer per row communicator, likewise per column.
    let mut row_ops = Vec::new();
    let mut row_timers = Vec::new();
    for r in 0..cfg.pr {
        let comm = cfg.row_comm(r);
        let op = session.add_op_on_comm(
            &format!("row{r}-ialltoall"),
            FunctionSet::ialltoall_default(CollSpec::new(cfg.pc, cfg.row_msg_bytes())),
            tuner_cfg,
            comm.clone(),
        );
        let timer = session.add_timer_subset(vec![op], &comm);
        row_ops.push(op);
        row_timers.push(timer);
    }
    let mut col_ops = Vec::new();
    let mut col_timers = Vec::new();
    for c in 0..cfg.pc {
        let comm = cfg.col_comm(c);
        let op = session.add_op_on_comm(
            &format!("col{c}-ialltoall"),
            FunctionSet::ialltoall_default(CollSpec::new(cfg.pr, cfg.col_msg_bytes())),
            tuner_cfg,
            comm.clone(),
        );
        let timer = session.add_timer_subset(vec![op], &comm);
        col_ops.push(op);
        col_timers.push(timer);
    }
    let scripts: Vec<Box<dyn Script>> = (0..p)
        .map(|g| {
            let (r, c) = (g / cfg.pc, g % cfg.pc);
            Box::new(PencilScript::new(
                cfg,
                platform.gflops_per_core,
                row_ops[r],
                row_timers[r],
                col_ops[c],
                col_timers[c],
            )) as Box<dyn Script>
        })
        .collect();
    let mut runner = Runner::new(session, scripts);
    world.run(&mut runner).expect("pencil kernel deadlocked");
    let s = runner.session;
    let winner_of = |op: usize| {
        s.ops[op]
            .tuner
            .winner()
            .map(|w| s.ops[op].fnset.functions[w].name.clone())
    };
    PencilResult {
        row_winners: row_ops.iter().map(|&op| winner_of(op)).collect(),
        col_winners: col_ops.iter().map(|&op| winner_of(op)).collect(),
        row_totals: row_timers.iter().map(|&t| s.timers[t].total()).collect(),
        col_totals: col_timers.iter().map(|&t| s.timers[t].total()).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> PencilConfig {
        PencilConfig {
            n: 64,
            pr: 2,
            pc: 4,
            iters: 16,
            tiles: 2,
            window: 2,
            progress_per_tile: 2,
            reps: 2,
            placement: Placement::Block,
        }
    }

    #[test]
    fn geometry_and_sizes() {
        let cfg = small();
        assert_eq!(cfg.nprocs(), 8);
        assert_eq!(cfg.row_comm(1), vec![4, 5, 6, 7]);
        assert_eq!(cfg.col_comm(2), vec![2, 6]);
        // Row transpose splits across pc, column across pr.
        assert!(cfg.row_msg_bytes() < cfg.col_msg_bytes());
    }

    #[test]
    fn pencil_runs_and_all_comms_converge() {
        let cfg = small();
        let r = run_pencil(
            &Platform::whale(),
            &cfg,
            SelectionLogic::BruteForce,
            NoiseConfig::none(),
        );
        assert_eq!(r.row_winners.len(), 2);
        assert_eq!(r.col_winners.len(), 4);
        for w in r.row_winners.iter().chain(&r.col_winners) {
            assert!(w.is_some(), "every communicator converges: {r:?}");
        }
        assert!(r.transpose_total() > 0.0);
    }

    #[test]
    fn tuned_not_worse_than_fixed_linear_steady() {
        let mut cfg = small();
        cfg.iters = 24;
        let fixed = run_pencil(
            &Platform::whale(),
            &cfg,
            SelectionLogic::Fixed(0),
            NoiseConfig::none(),
        );
        let tuned = run_pencil(
            &Platform::whale(),
            &cfg,
            SelectionLogic::BruteForce,
            NoiseConfig::none(),
        );
        // Totals include the learning phase; allow its overhead.
        assert!(
            tuned.transpose_total() <= fixed.transpose_total() * 1.4,
            "tuned {} vs fixed {}",
            tuned.transpose_total(),
            fixed.transpose_total()
        );
    }

    #[test]
    fn deterministic() {
        let cfg = small();
        let a = run_pencil(
            &Platform::crill(),
            &cfg,
            SelectionLogic::BruteForce,
            NoiseConfig::light(3),
        );
        let b = run_pencil(
            &Platform::crill(),
            &cfg,
            SelectionLogic::BruteForce,
            NoiseConfig::light(3),
        );
        assert_eq!(a.row_totals, b.row_totals);
        assert_eq!(a.col_winners, b.col_winners);
    }
}
