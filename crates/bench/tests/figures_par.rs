//! The figure binaries must print byte-identical output no matter how
//! many sweep workers they use — the acceptance bar for the parallel
//! sweep engine.

use std::process::Command;

fn run(bin: &str, jobs: &str) -> Vec<u8> {
    let out = Command::new(bin)
        .args(["--quick", "--jobs", jobs])
        .output()
        .unwrap_or_else(|e| panic!("failed to spawn {bin}: {e}"));
    assert!(
        out.status.success(),
        "{bin} --quick --jobs {jobs} failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    out.stdout
}

#[test]
fn table_verification_stats_invariant_under_jobs() {
    let bin = env!("CARGO_BIN_EXE_table_verification_stats");
    let serial = run(bin, "1");
    let par = run(bin, "8");
    assert!(
        serial == par,
        "output differs between --jobs 1 and --jobs 8:\n--- jobs 1 ---\n{}\n--- jobs 8 ---\n{}",
        String::from_utf8_lossy(&serial),
        String::from_utf8_lossy(&par)
    );
}
