//! Minimal wall-clock micro-benchmark harness (offline replacement for
//! criterion).
//!
//! Bench targets keep `harness = false` and drive this instead. Behaviour
//! mirrors the part of criterion we used:
//!
//! * `cargo bench` passes `--bench`, which selects *measure* mode:
//!   each benchmark is calibrated so a sample takes a few milliseconds,
//!   then timed over several samples, reporting median ns/iter.
//! * Under `cargo test` (no `--bench` argument) every benchmark runs for
//!   a single iteration as a smoke test, so the test suite stays fast.
//! * A positional argument filters benchmarks by substring, like
//!   `cargo bench -- event_queue`.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Top-level harness; create once per bench target.
pub struct Harness {
    filter: Option<String>,
    measure: bool,
}

impl Default for Harness {
    fn default() -> Self {
        Self::from_args()
    }
}

impl Harness {
    /// Parse `cargo bench`/`cargo test` style arguments.
    pub fn from_args() -> Harness {
        let mut filter = None;
        let mut measure = false;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--bench" => measure = true,
                // `cargo test` may pass harness flags; ignore anything
                // flag-like and keep the first positional as the filter.
                s if s.starts_with('-') => {}
                s => {
                    if filter.is_none() {
                        filter = Some(s.to_string());
                    }
                }
            }
        }
        Harness { filter, measure }
    }

    /// Start a named group of related benchmarks.
    pub fn group(&mut self, name: &str) -> Group<'_> {
        Group {
            harness: self,
            name: name.to_string(),
            samples: 25,
        }
    }
}

/// A named group; mirrors criterion's `benchmark_group`.
pub struct Group<'a> {
    harness: &'a mut Harness,
    name: String,
    samples: usize,
}

impl Group<'_> {
    /// Number of timed samples per benchmark (measure mode only).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(2);
        self
    }

    /// Run one benchmark. `f` is a full iteration; its return value is
    /// black-boxed so the work is not optimized away.
    pub fn bench<R>(&mut self, id: &str, mut f: impl FnMut() -> R) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        if let Some(flt) = &self.harness.filter {
            if !full.contains(flt.as_str()) {
                return self;
            }
        }
        if !self.harness.measure {
            // Smoke mode (cargo test): one iteration, no timing output.
            black_box(f());
            println!("{full}: ok (smoke)");
            return self;
        }

        // Calibrate: how many iterations make a sample >= ~5 ms?
        let once = time_iters(&mut f, 1);
        let target = Duration::from_millis(5);
        let iters_per_sample = if once >= target {
            1
        } else {
            let per_iter = once.as_nanos().max(1);
            ((target.as_nanos() / per_iter) as usize).clamp(1, 1_000_000)
        };

        let mut per_iter_ns: Vec<f64> = (0..self.samples)
            .map(|_| {
                let d = time_iters(&mut f, iters_per_sample);
                d.as_nanos() as f64 / iters_per_sample as f64
            })
            .collect();
        per_iter_ns.sort_by(|a, b| a.total_cmp(b));
        let median = per_iter_ns[per_iter_ns.len() / 2];
        let best = per_iter_ns[0];
        println!(
            "{full:56} {:>14}/iter (best {:>12}, {} samples x {} iters)",
            fmt_ns(median),
            fmt_ns(best),
            self.samples,
            iters_per_sample
        );
        self
    }
}

fn time_iters<R>(f: &mut impl FnMut() -> R, iters: usize) -> Duration {
    let start = Instant::now();
    for _ in 0..iters {
        black_box(f());
    }
    start.elapsed()
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}
