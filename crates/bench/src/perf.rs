//! Self-timing harness for the sweep engine: measures wall-clock and
//! simulator-event throughput of representative workloads and writes the
//! perf trajectory to `BENCH_engine.json` at the repository root.
//!
//! The metrics:
//!
//! * `wall_secs` — wall-clock of the measured closure,
//! * `sim_events` — discrete events applied by every `mpisim::World::run`
//!   during the closure (via [`mpisim::sim_events_total`]), the natural
//!   unit of simulator work (independent of host speed),
//! * `replayed_events` — events a memo hit stood in for (credited by
//!   `adcl::simmemo` when a cached outcome replaces a fresh simulation),
//! * `queue_ops` — raw event-queue operations for entries that exercise
//!   the queue directly rather than through `World::run` (0 elsewhere),
//! * `events_per_sec` — *effective* throughput, `(sim_events +
//!   replayed_events + queue_ops) / wall_secs`; the figure tracked across
//!   commits,
//! * `allocs_per_event` — payload-buffer allocations (pool misses plus
//!   naive-mode copies, from `simcore::stats::payload_allocs`) per fresh
//!   simulated event; the zero-copy payload engine drives this toward 0,
//! * `speedup_vs_serial` — wall-clock of the same-named `jobs = 1` row
//!   divided by this row's wall-clock (1 for the serial row itself),
//! * schedule-cache and sim-memo hit/miss totals over the session.
//!
//! JSON is written by hand — the workspace is dependency-free by design.

use std::time::Instant;

/// One measured workload.
#[derive(Debug, Clone)]
pub struct PerfEntry {
    /// Workload name (stable across commits; used as the JSON key).
    pub name: String,
    /// Worker threads used (1 = serial baseline).
    pub jobs: usize,
    /// Wall-clock seconds.
    pub wall_secs: f64,
    /// Simulator events applied during the measurement (fresh runs only).
    pub sim_events: u64,
    /// Events served from the sim-memo cache instead of re-simulated.
    pub replayed_events: u64,
    /// Raw event-queue operations (for microbenchmarks that drive the
    /// queue directly; 0 for full-simulation workloads).
    pub queue_ops: u64,
    /// `(sim_events + replayed_events + queue_ops) / wall_secs`.
    pub events_per_sec: f64,
    /// Payload-buffer allocations per fresh simulated event.
    pub allocs_per_event: f64,
    /// Wall-clock speedup vs the same workload's `jobs = 1` row, if one
    /// was measured earlier in the session.
    pub speedup_vs_serial: Option<f64>,
    /// True when the row requested more workers than the host has hardware
    /// threads, so the hardware clamp (or the intra-world partition clamp)
    /// ran it at reduced or serial parallelism. Clamped rows measure host
    /// constraint, not engine scaling: consumers (the `verify.sh` scaling
    /// gate) must skip them instead of reading ~1x as a regression.
    pub clamped: bool,
}

/// Does a `jobs`-thread row exceed the host's real hardware parallelism?
fn clamped_on_this_host(jobs: usize) -> bool {
    jobs > simcore::par::hardware_parallelism()
}

/// A perf measurement session accumulating [`PerfEntry`] rows.
#[derive(Debug, Default)]
pub struct PerfReport {
    entries: Vec<PerfEntry>,
    sections: Vec<(String, String)>,
}

impl PerfReport {
    /// Empty report; also resets the schedule-cache and sim-memo counters
    /// so the final hit ratios describe exactly this session.
    pub fn new() -> PerfReport {
        nbc::cache::reset_stats();
        adcl::simmemo::reset_stats();
        PerfReport {
            entries: Vec::new(),
            sections: Vec::new(),
        }
    }

    /// Attach (or replace) an extra top-level JSON section, e.g.
    /// `adcld_serve`. `body` must be a rendered JSON value; it is embedded
    /// verbatim under `name` by [`PerfReport::to_json`].
    pub fn set_section(&mut self, name: &str, body: String) {
        if let Some(s) = self.sections.iter_mut().find(|(n, _)| n == name) {
            s.1 = body;
        } else {
            self.sections.push((name.to_string(), body));
        }
    }

    /// Time `body`, attributing all simulator events, memo replays and
    /// payload allocations it triggers. Returns the entry (also kept in
    /// the report).
    pub fn measure(&mut self, name: &str, jobs: usize, body: impl FnOnce()) -> PerfEntry {
        let mut body = Some(body);
        self.record_sample(name, jobs, 1, 0, &mut || (body.take().unwrap())())
    }

    /// Like [`PerfReport::measure`] but runs `body` `passes` times and
    /// keeps the fastest wall-clock sample (events and allocations are
    /// identical across passes for deterministic workloads). Sub-10 ms
    /// workloads on a loaded host are noisy enough that a single sample
    /// can swing ±40%; the minimum over a few passes is the standard
    /// stable estimator, and the regression guard in `scripts/verify.sh`
    /// depends on it.
    pub fn measure_best_of(
        &mut self,
        name: &str,
        jobs: usize,
        passes: usize,
        body: impl Fn(),
    ) -> PerfEntry {
        assert!(passes >= 1);
        self.record_sample(name, jobs, passes, 0, &mut || body())
    }

    /// Like [`PerfReport::measure_best_of`] for workloads that exercise
    /// the event queue directly (no `World::run`, so `sim_events` stays 0):
    /// `queue_ops` is the number of queue operations one pass performs, and
    /// it is folded into `events_per_sec` so the entry reports a meaningful
    /// throughput instead of 0.0.
    pub fn measure_best_of_ops(
        &mut self,
        name: &str,
        jobs: usize,
        passes: usize,
        queue_ops: u64,
        body: impl Fn(),
    ) -> PerfEntry {
        assert!(passes >= 1);
        self.record_sample(name, jobs, passes, queue_ops, &mut || body())
    }

    /// Record an entry whose wall-clock was measured externally — used
    /// when samples for several `jobs` values must be interleaved
    /// (round-robin) so slow host-load drift cancels across rows instead
    /// of biasing whichever row is measured last. `speedup_vs_serial` is
    /// resolved against the report's existing `jobs == 1` row of the same
    /// name, exactly as the internally timed paths do.
    pub fn record_timed(
        &mut self,
        name: &str,
        jobs: usize,
        wall_secs: f64,
        sim_events: u64,
    ) -> PerfEntry {
        let speedup_vs_serial = if jobs == 1 {
            Some(1.0)
        } else {
            self.entries
                .iter()
                .rev()
                .find(|e| e.name == name && e.jobs == 1)
                .filter(|_| wall_secs > 0.0)
                .map(|serial| serial.wall_secs / wall_secs)
        };
        let entry = PerfEntry {
            name: name.to_string(),
            jobs,
            wall_secs,
            sim_events,
            replayed_events: 0,
            queue_ops: 0,
            events_per_sec: if wall_secs > 0.0 {
                sim_events as f64 / wall_secs
            } else {
                0.0
            },
            allocs_per_event: 0.0,
            speedup_vs_serial,
            clamped: clamped_on_this_host(jobs),
        };
        self.entries.push(entry.clone());
        entry
    }

    fn record_sample(
        &mut self,
        name: &str,
        jobs: usize,
        passes: usize,
        queue_ops: u64,
        body: &mut dyn FnMut(),
    ) -> PerfEntry {
        let mut wall_secs = f64::INFINITY;
        let mut sim_events = 0;
        let mut allocs = 0;
        let mut replayed_events = 0;
        for _ in 0..passes {
            let ev0 = mpisim::sim_events_total();
            let alloc0 = simcore::stats::payload_allocs();
            let replay0 = adcl::simmemo::stats().replayed_events;
            let t0 = Instant::now();
            body();
            let wall = t0.elapsed().as_secs_f64();
            if wall < wall_secs {
                wall_secs = wall;
                sim_events = mpisim::sim_events_total() - ev0;
                allocs = simcore::stats::payload_allocs() - alloc0;
                replayed_events = adcl::simmemo::stats().replayed_events - replay0;
            }
        }
        let effective = sim_events + replayed_events + queue_ops;
        let speedup_vs_serial = if jobs == 1 {
            Some(1.0)
        } else {
            self.entries
                .iter()
                .rev()
                .find(|e| e.name == name && e.jobs == 1)
                .filter(|_| wall_secs > 0.0)
                .map(|serial| serial.wall_secs / wall_secs)
        };
        let entry = PerfEntry {
            name: name.to_string(),
            jobs,
            wall_secs,
            sim_events,
            replayed_events,
            queue_ops,
            events_per_sec: if wall_secs > 0.0 {
                effective as f64 / wall_secs
            } else {
                0.0
            },
            allocs_per_event: if sim_events > 0 {
                allocs as f64 / sim_events as f64
            } else {
                0.0
            },
            speedup_vs_serial,
            clamped: clamped_on_this_host(jobs),
        };
        self.entries.push(entry.clone());
        entry
    }

    /// Measured entries, in measurement order.
    pub fn entries(&self) -> &[PerfEntry] {
        &self.entries
    }

    /// Speedup of the last entry named `name` at `jobs` threads relative
    /// to the same workload at 1 thread, if both were measured.
    pub fn speedup(&self, name: &str) -> Option<f64> {
        let serial = self
            .entries
            .iter()
            .rev()
            .find(|e| e.name == name && e.jobs == 1)?;
        let par = self
            .entries
            .iter()
            .rev()
            .find(|e| e.name == name && e.jobs > 1)?;
        if par.wall_secs > 0.0 {
            Some(serial.wall_secs / par.wall_secs)
        } else {
            None
        }
    }

    /// Render the report as a JSON document (schedule-cache, sim-memo and
    /// registry stats are sampled at render time). Schema v3 added a
    /// `metrics` block (the full `simcore::metrics` registry snapshot —
    /// process-lifetime totals, not session deltas); v4 added the
    /// per-entry `queue_ops` field and folds it into `events_per_sec` for
    /// queue-microbenchmark entries; v5 makes `host_threads` the real
    /// detected hardware parallelism (`simcore::par::hardware_parallelism`,
    /// affinity-aware with a `/proc/cpuinfo` fallback — the old
    /// `available_parallelism().map_or(1, …)` silently reported 1 whenever
    /// detection errored) and adds `pool_threads`, the number of persistent
    /// sweep workers actually spawned this session. Consumers (the
    /// verify.sh scaling gate) use `host_threads` to decide which speedup
    /// expectations are physically meaningful on this host; v6 moves that
    /// decision into the report itself with the per-entry `clamped` flag
    /// (`jobs` exceeded the host's hardware threads), so gates skip
    /// clamped rows explicitly instead of by host heuristic; v7 adds
    /// optional named sections ([`PerfReport::set_section`]) — the first
    /// consumer is `adcld_serve`, the tuning-daemon load-generator results
    /// (requests/sec and p50/p99 latency for cold/warm/mixed traffic); v8
    /// adds the `racing` section (brute-force vs racing-selection sweep
    /// comparison: simulated events per decision, eliminated candidates,
    /// and the winner-parity verdict the verify.sh gate keys on).
    pub fn to_json(&self) -> String {
        let (hits, misses) = nbc::cache::stats();
        let memo = adcl::simmemo::stats();
        let mut s = String::from("{\n");
        s.push_str("  \"schema\": \"adcl-bench-engine-v8\",\n");
        s.push_str(&format!(
            "  \"host_threads\": {},\n",
            simcore::par::hardware_parallelism()
        ));
        s.push_str(&format!(
            "  \"pool_threads\": {},\n",
            simcore::par::pool_size()
        ));
        s.push_str(&format!(
            "  \"schedule_cache\": {{\"hits\": {hits}, \"misses\": {misses}}},\n"
        ));
        s.push_str(&format!(
            "  \"sim_memo\": {{\"hits\": {}, \"misses\": {}, \"replayed_events\": {}}},\n",
            memo.hits, memo.misses, memo.replayed_events
        ));
        s.push_str(&format!(
            "  \"payload_allocs\": {},\n",
            simcore::stats::payload_allocs()
        ));
        let snap = simcore::metrics::snapshot();
        s.push_str("  \"metrics\": {");
        for (i, (name, reading)) in snap.iter().enumerate() {
            let comma = if i + 1 == snap.len() { "" } else { "," };
            let rendered = match *reading {
                simcore::metrics::Reading::Counter(v) | simcore::metrics::Reading::Gauge(v) => {
                    v.to_string()
                }
                simcore::metrics::Reading::Histogram { count, sum, max } => {
                    format!("{{\"count\": {count}, \"sum\": {sum}, \"max\": {max}}}")
                }
            };
            s.push_str(&format!("\n    {}: {rendered}{comma}", json_str(name)));
        }
        s.push_str("\n  },\n");
        for (name, body) in &self.sections {
            s.push_str(&format!("  {}: {body},\n", json_str(name)));
        }
        s.push_str("  \"entries\": [\n");
        for (i, e) in self.entries.iter().enumerate() {
            let comma = if i + 1 == self.entries.len() { "" } else { "," };
            let speedup = match e.speedup_vs_serial {
                Some(v) => format!("{v:.3}"),
                None => "null".to_string(),
            };
            s.push_str(&format!(
                "    {{\"name\": {}, \"jobs\": {}, \"wall_secs\": {:.6}, \"sim_events\": {}, \"replayed_events\": {}, \"queue_ops\": {}, \"events_per_sec\": {:.1}, \"allocs_per_event\": {:.6}, \"speedup_vs_serial\": {}, \"clamped\": {}}}{}\n",
                json_str(&e.name),
                e.jobs,
                e.wall_secs,
                e.sim_events,
                e.replayed_events,
                e.queue_ops,
                e.events_per_sec,
                e.allocs_per_event,
                speedup,
                e.clamped,
                comma
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Write the JSON report to `path`.
    pub fn write(&self, path: &str) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

/// Minimal JSON string escaping (names are ASCII identifiers in practice).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_records_entry() {
        let mut r = PerfReport::new();
        let e = r.measure("noop", 1, || {});
        assert_eq!(e.name, "noop");
        assert_eq!(r.entries().len(), 1);
        assert!(e.wall_secs >= 0.0);
        assert_eq!(e.speedup_vs_serial, Some(1.0));
    }

    #[test]
    fn speedup_needs_both_rows() {
        let mut r = PerfReport::new();
        r.measure("w", 1, || {
            std::thread::sleep(std::time::Duration::from_millis(2))
        });
        assert!(r.speedup("w").is_none());
        let e = r.measure("w", 4, || {});
        assert!(r.speedup("w").is_some());
        // The per-entry field agrees with the report-level query.
        assert_eq!(e.speedup_vs_serial, r.speedup("w"));
    }

    #[test]
    fn parallel_row_without_serial_baseline_has_no_speedup() {
        let mut r = PerfReport::new();
        let e = r.measure("lonely", 8, || {});
        assert_eq!(e.speedup_vs_serial, None);
    }

    #[test]
    fn clamped_tracks_hardware_parallelism() {
        let hw = simcore::par::hardware_parallelism();
        let mut r = PerfReport::new();
        // A serial row can never be clamped; a row requesting more workers
        // than the host has hardware threads always is.
        assert!(!r.measure("c", 1, || {}).clamped);
        assert!(r.measure("c", hw + 1, || {}).clamped);
        assert!(!r.record_timed("c", hw, 0.001, 10).clamped);
        assert!(r.record_timed("c", hw * 2, 0.001, 10).clamped);
    }

    #[test]
    fn queue_ops_fold_into_events_per_sec() {
        let mut r = PerfReport::new();
        let e = r.measure_best_of_ops("q", 1, 2, 1000, || {
            std::thread::sleep(std::time::Duration::from_millis(1))
        });
        assert_eq!(e.queue_ops, 1000);
        assert!(
            e.events_per_sec > 0.0,
            "queue-op entries must not report 0.0 ev/s"
        );
        // Full-simulation entries keep queue_ops at 0.
        let plain = r.measure("p", 1, || {});
        assert_eq!(plain.queue_ops, 0);
    }

    #[test]
    fn json_is_wellformed_enough() {
        let mut r = PerfReport::new();
        r.measure("a\"b", 1, || {});
        r.set_section("adcld_serve", "{\"cold\":{\"requests\":8}}".into());
        let j = r.to_json();
        assert!(j.starts_with("{\n"));
        assert!(j.trim_end().ends_with('}'));
        assert!(j.contains("\\\""));
        assert!(j.contains("\"entries\""));
        assert!(j.contains("adcl-bench-engine-v8"));
        assert!(j.contains("\"adcld_serve\""));
        assert!(j.contains("\"clamped\""));
        assert!(j.contains("\"host_threads\""));
        assert!(j.contains("\"pool_threads\""));
        assert!(j.contains("\"queue_ops\""));
        assert!(j.contains("\"sim_memo\""));
        assert!(j.contains("\"metrics\""));
        assert!(j.contains("\"allocs_per_event\""));
        assert!(j.contains("\"speedup_vs_serial\""));
        // The whole report must parse as a standalone JSON document.
        simcore::json::parse(&j).expect("report is valid JSON");
    }
}
