//! Self-timing harness for the sweep engine: measures wall-clock and
//! simulator-event throughput of representative workloads and writes the
//! perf trajectory to `BENCH_engine.json` at the repository root.
//!
//! The metrics:
//!
//! * `wall_secs` — wall-clock of the measured closure,
//! * `sim_events` — discrete events applied by every `mpisim::World::run`
//!   during the closure (via [`mpisim::sim_events_total`]), the natural
//!   unit of simulator work (independent of host speed),
//! * `events_per_sec` — the throughput figure tracked across commits,
//! * schedule-cache hits/misses over the whole measurement session
//!   (from [`nbc::cache::stats`]).
//!
//! JSON is written by hand — the workspace is dependency-free by design.

use std::time::Instant;

/// One measured workload.
#[derive(Debug, Clone)]
pub struct PerfEntry {
    /// Workload name (stable across commits; used as the JSON key).
    pub name: String,
    /// Worker threads used (1 = serial baseline).
    pub jobs: usize,
    /// Wall-clock seconds.
    pub wall_secs: f64,
    /// Simulator events applied during the measurement.
    pub sim_events: u64,
    /// `sim_events / wall_secs`.
    pub events_per_sec: f64,
}

/// A perf measurement session accumulating [`PerfEntry`] rows.
#[derive(Debug, Default)]
pub struct PerfReport {
    entries: Vec<PerfEntry>,
}

impl PerfReport {
    /// Empty report; also resets the schedule-cache counters so the final
    /// hit ratio describes exactly this session.
    pub fn new() -> PerfReport {
        nbc::cache::reset_stats();
        PerfReport {
            entries: Vec::new(),
        }
    }

    /// Time `body`, attributing all simulator events it triggers.
    /// Returns the entry (also kept in the report).
    pub fn measure(&mut self, name: &str, jobs: usize, body: impl FnOnce()) -> PerfEntry {
        let ev0 = mpisim::sim_events_total();
        let t0 = Instant::now();
        body();
        let wall_secs = t0.elapsed().as_secs_f64();
        let sim_events = mpisim::sim_events_total() - ev0;
        let entry = PerfEntry {
            name: name.to_string(),
            jobs,
            wall_secs,
            sim_events,
            events_per_sec: if wall_secs > 0.0 {
                sim_events as f64 / wall_secs
            } else {
                0.0
            },
        };
        self.entries.push(entry.clone());
        entry
    }

    /// Measured entries, in measurement order.
    pub fn entries(&self) -> &[PerfEntry] {
        &self.entries
    }

    /// Speedup of the last entry named `name` at `jobs` threads relative
    /// to the same workload at 1 thread, if both were measured.
    pub fn speedup(&self, name: &str) -> Option<f64> {
        let serial = self
            .entries
            .iter()
            .rev()
            .find(|e| e.name == name && e.jobs == 1)?;
        let par = self
            .entries
            .iter()
            .rev()
            .find(|e| e.name == name && e.jobs > 1)?;
        if par.wall_secs > 0.0 {
            Some(serial.wall_secs / par.wall_secs)
        } else {
            None
        }
    }

    /// Render the report as a JSON document (schedule-cache stats are
    /// sampled at render time).
    pub fn to_json(&self) -> String {
        let (hits, misses) = nbc::cache::stats();
        let mut s = String::from("{\n");
        s.push_str("  \"schema\": \"adcl-bench-engine-v1\",\n");
        s.push_str(&format!(
            "  \"host_threads\": {},\n",
            std::thread::available_parallelism().map_or(1, |n| n.get())
        ));
        s.push_str(&format!(
            "  \"schedule_cache\": {{\"hits\": {hits}, \"misses\": {misses}}},\n"
        ));
        s.push_str("  \"entries\": [\n");
        for (i, e) in self.entries.iter().enumerate() {
            let comma = if i + 1 == self.entries.len() { "" } else { "," };
            s.push_str(&format!(
                "    {{\"name\": {}, \"jobs\": {}, \"wall_secs\": {:.6}, \"sim_events\": {}, \"events_per_sec\": {:.1}}}{}\n",
                json_str(&e.name),
                e.jobs,
                e.wall_secs,
                e.sim_events,
                e.events_per_sec,
                comma
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Write the JSON report to `path`.
    pub fn write(&self, path: &str) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

/// Minimal JSON string escaping (names are ASCII identifiers in practice).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_records_entry() {
        let mut r = PerfReport::new();
        let e = r.measure("noop", 1, || {});
        assert_eq!(e.name, "noop");
        assert_eq!(r.entries().len(), 1);
        assert!(e.wall_secs >= 0.0);
    }

    #[test]
    fn speedup_needs_both_rows() {
        let mut r = PerfReport::new();
        r.measure("w", 1, || {
            std::thread::sleep(std::time::Duration::from_millis(2))
        });
        assert!(r.speedup("w").is_none());
        r.measure("w", 4, || {});
        assert!(r.speedup("w").is_some());
    }

    #[test]
    fn json_is_wellformed_enough() {
        let mut r = PerfReport::new();
        r.measure("a\"b", 1, || {});
        let j = r.to_json();
        assert!(j.starts_with("{\n"));
        assert!(j.trim_end().ends_with('}'));
        assert!(j.contains("\\\""));
        assert!(j.contains("\"entries\""));
        assert!(j.contains("adcl-bench-engine-v1"));
    }
}
