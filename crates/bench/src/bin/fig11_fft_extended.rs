//! Fig. 11 — 3-D FFT with the extended (blocking-capable) ADCL
//! function-set vs blocking MPI on whale, with and without the learning
//! phase.
//!
//! Expected shape: counting the whole run, blocking MPI sometimes still
//! wins because the extended function-set has twice as many
//! implementations to evaluate; excluding the learning phase, the ADCL
//! version matches or beats MPI — so for long-running applications the
//! extended set pays off.

use autonbc::prelude::*;
use bench::{banner, fmt_secs, Args, Table};
use fft3d::patterns::run_fft_kernel;

fn main() {
    let args = Args::parse();
    banner(
        "Fig. 11",
        "3-D FFT on whale: extended ADCL function-set vs MPI, learning split out",
    );
    let procs = args.pick(vec![32usize, 64], vec![160usize, 358]);
    let cfg = FftKernelConfig {
        n: args.pick(128, 256),
        planes_per_rank: 8,
        iters: args.pick(40, 350),
        tile: 4,
        progress_per_tile: 2,
        reps: 3,
        placement: Placement::Block,
    };
    let platform = Platform::whale();

    for p in procs {
        println!();
        println!("whale, {p} processes, {} iterations", cfg.iters);
        let mut t = Table::new(&[
            "pattern",
            "mpi-blocking",
            "adcl-ext total",
            "adcl-ext steady",
            "winner",
            "nonblocking?",
        ]);
        let mut nonblocking_selected = 0;
        for pattern in FftPattern::all() {
            let mpi = run_fft_kernel(
                &platform,
                p,
                &cfg,
                pattern,
                FftMode::BlockingMpi,
                NoiseConfig::light(p as u64),
            );
            let ext = run_fft_kernel(
                &platform,
                p,
                &cfg,
                pattern,
                FftMode::AdclExtended(bench::tuned_logic()),
                NoiseConfig::light(p as u64),
            );
            // Steady-state comparison over the same number of iterations:
            // scale both to per-iteration rates x full iteration count.
            let learn = ext.converged_at.unwrap_or(0);
            let steady_rate = if cfg.iters > learn {
                ext.post_learning_time / (cfg.iters - learn) as f64
            } else {
                f64::NAN
            };
            let winner = ext.winner.clone().unwrap_or_else(|| "?".into());
            let nonblocking = !winner.ends_with("-blocking");
            if nonblocking {
                nonblocking_selected += 1;
            }
            t.row(vec![
                pattern.name().into(),
                fmt_secs(mpi.total_time),
                fmt_secs(ext.total_time),
                format!("{}/iter", fmt_secs(steady_rate)),
                winner,
                if nonblocking { "yes" } else { "no" }.into(),
            ]);
        }
        t.print();
        println!(
            "non-blocking implementation selected in {nonblocking_selected}/4 patterns \
             (paper: 13/16 on whale)"
        );
    }
    println!();
    println!("paper: including blocking algorithms in the Ialltoall function-set lets");
    println!("ADCL decide blocking vs non-blocking at run time; the longer learning");
    println!("phase is amortized in long-running applications.");
    bench::write_trace_if_requested();
}
