//! Extension experiment — slab (1-D) vs pencil (2-D) decomposition with
//! per-communicator tuning.
//!
//! The paper's kernel uses a slab decomposition (one global all-to-all).
//! This table runs the same FFT workload with a 2-D pencil decomposition,
//! where every row and column communicator carries its own ADCL request
//! and tunes independently — smaller communicators, smaller messages,
//! potentially different winners per direction.

use autonbc::prelude::*;
use bench::{banner, fmt_secs, Args, Table};
use fft3d::patterns::run_fft_kernel;
use fft3d::pencil::{run_pencil, PencilConfig};

fn main() {
    let args = Args::parse();
    banner(
        "Extension",
        "slab (1-D) vs pencil (2-D) FFT decomposition, per-communicator tuning",
    );
    let (pr, pc) = args.pick((4usize, 8usize), (8usize, 16usize));
    let p = pr * pc;
    let n = args.pick(128, 256);
    let iters = args.pick(24, 200);
    let platform = Platform::whale();

    // Slab baseline: the paper's window-tiled kernel at the same scale.
    let slab_cfg = FftKernelConfig {
        n,
        planes_per_rank: 8,
        iters,
        tile: 4,
        progress_per_tile: 2,
        reps: 3,
        placement: Placement::Block,
    };
    let slab_nbc = run_fft_kernel(
        &platform,
        p,
        &slab_cfg,
        FftPattern::WindowTiled,
        FftMode::LibNbc,
        NoiseConfig::none(),
    );
    let slab_adcl = run_fft_kernel(
        &platform,
        p,
        &slab_cfg,
        FftPattern::WindowTiled,
        FftMode::Adcl(bench::tuned_logic()),
        NoiseConfig::none(),
    );

    // Pencil: pr x pc process grid, tuned vs fixed-linear.
    let pencil_cfg = PencilConfig {
        n,
        pr,
        pc,
        iters,
        tiles: 4,
        window: 2,
        progress_per_tile: 2,
        reps: 3,
        placement: Placement::Block,
    };
    let pencil_fixed = run_pencil(
        &platform,
        &pencil_cfg,
        SelectionLogic::Fixed(0),
        NoiseConfig::none(),
    );
    let pencil_tuned = run_pencil(
        &platform,
        &pencil_cfg,
        bench::tuned_logic(),
        NoiseConfig::none(),
    );

    println!();
    println!("whale, {p} procs ({pr}x{pc} grid for pencil), n={n}, {iters} iterations");
    let mut t = Table::new(&["configuration", "tuned section total", "notes"]);
    t.row(vec![
        "slab, libnbc linear".into(),
        fmt_secs(slab_nbc.total_time),
        "1 global alltoall".into(),
    ]);
    t.row(vec![
        "slab, ADCL".into(),
        fmt_secs(slab_adcl.total_time),
        format!("winner {}", slab_adcl.winner.unwrap_or_default()),
    ]);
    t.row(vec![
        "pencil, fixed linear".into(),
        fmt_secs(pencil_fixed.per_rank_transpose_time()),
        format!("{pr} row + {pc} col comms (per-rank time)"),
    ]);
    t.row(vec![
        "pencil, ADCL per comm".into(),
        fmt_secs(pencil_tuned.per_rank_transpose_time()),
        "each comm tunes itself (per-rank time)".into(),
    ]);
    t.print();

    println!();
    let mut count = std::collections::BTreeMap::new();
    for w in pencil_tuned
        .row_winners
        .iter()
        .chain(&pencil_tuned.col_winners)
        .flatten()
    {
        *count.entry(w.clone()).or_insert(0usize) += 1;
    }
    println!(
        "pencil winners across {} communicators: {:?}",
        pr + pc,
        count
    );
    println!(
        "row transposes exchange {} B per pair, column transposes {} B —",
        pencil_cfg.row_msg_bytes(),
        pencil_cfg.col_msg_bytes()
    );
    println!("different regimes, so per-communicator tuning can pick differently.");
    bench::write_trace_if_requested();
}
