//! Guideline sweep report — the decision-quality observatory's CLI.
//!
//! Evaluates every registered performance guideline (see
//! `adcl::guidelines`) over a platform × ranks × message-size grid,
//! prints a per-guideline rollup plus the violation list, and writes the
//! structured record to `BENCH_guidelines.json` (schema
//! `adcl-guidelines-v1`). The default grid is the full sweep; `--quick`
//! selects the verify-gate subset (3 platforms × {4,8} ranks × {1,64} KiB).
//!
//! Exit status is the gate: 0 when no *severe* violation was found,
//! 1 otherwise (composition violations are informational by design — a
//! mock-up beating a native collective is a tuning opportunity, not a
//! bug). Output contains no wall-clock content, so stdout and the JSON
//! file are byte-identical across runs and `--jobs` values.

use adcl::guidelines::{self, SweepConfig};
use bench::{banner, Table};

const USAGE: &str = "usage: guidelines_report [--quick] [--jobs N] [--out FILE]";

struct Cli {
    quick: bool,
    jobs: Option<usize>,
    out: String,
}

fn parse_cli() -> Cli {
    let mut cli = Cli {
        quick: false,
        jobs: None,
        out: "BENCH_guidelines.json".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => cli.quick = true,
            "--jobs" => {
                let v = it.next().unwrap_or_else(|| bad("--jobs needs a value"));
                cli.jobs = Some(v.trim().parse().unwrap_or_else(|_| {
                    bad(&format!("--jobs expects a non-negative integer, got {v:?}"))
                }));
            }
            "--out" => {
                cli.out = it.next().unwrap_or_else(|| bad("--out needs a file path"));
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => bad(&format!("unknown argument {other:?}")),
        }
    }
    cli
}

fn bad(msg: &str) -> ! {
    eprintln!("guidelines_report: {msg}");
    eprintln!("{USAGE}");
    std::process::exit(2);
}

fn pct(v: f64) -> String {
    if v.is_finite() {
        format!("{:+.1}%", v * 100.0)
    } else if v > 0.0 {
        "+inf".into()
    } else {
        "-".into()
    }
}

fn main() {
    let cli = parse_cli();
    let jobs = simcore::par::effective_jobs(cli.jobs);
    bench::set_jobs(jobs);

    let cfg = if cli.quick {
        SweepConfig::quick()
    } else {
        SweepConfig::full()
    };
    banner(
        "Guidelines",
        "self-checking performance guidelines (Hunold-style dominance/monotonicity/mock-ups)",
    );
    println!();
    println!(
        "grid: {} platform(s) x ranks {:?} x msg {:?} ({} sweep)",
        cfg.platforms.len(),
        cfg.ranks,
        cfg.msgs,
        cfg.mode
    );

    let report = guidelines::run_sweep(&cfg, jobs);

    println!();
    let mut t = Table::new(&[
        "guideline",
        "checked",
        "violations",
        "severe",
        "worst slack",
    ]);
    for r in report.rollup() {
        t.row(vec![
            r.id.to_string(),
            r.checked.to_string(),
            r.violations.to_string(),
            r.severe.to_string(),
            pct(r.worst_slack),
        ]);
    }
    t.print();

    let viols = report.violations();
    if !viols.is_empty() {
        println!();
        println!("violations ({}):", viols.len());
        for c in &viols {
            println!(
                "  [{}] {} @ {}: {} > {} by {}",
                if c.severe { "SEVERE" } else { "info" },
                c.guideline,
                c.config,
                c.lhs,
                c.rhs,
                pct(c.slack),
            );
        }
    }

    if let Err(e) = std::fs::write(&cli.out, report.to_json()) {
        eprintln!("guidelines_report: cannot write {}: {e}", cli.out);
        std::process::exit(2);
    }

    println!();
    println!(
        "guidelines_report: {} guidelines, {} platforms, {} checks ({} sweep)",
        report.distinct_guidelines(),
        cfg.platforms.len(),
        report.checks.len(),
        cfg.mode
    );
    println!("severe violations: {}", report.severe_count());
    eprintln!(
        "guidelines_report: wrote {} ({} probes, {} memo replays)",
        cli.out, report.probes, report.probe_replays
    );
    if report.severe_count() > 0 {
        std::process::exit(1);
    }
}
