//! Ablation — historic learning (§IV-B's "interesting aspect").
//!
//! ADCL can transfer tuning decisions across executions of an application:
//! a second run that finds its scenario in the history store pins the
//! stored winner and pays no learning cost. This ablation measures the
//! saving for several scenarios: first execution (full learning) vs second
//! execution (history hit), with the never-tuned LibNBC-style baseline for
//! context.

use autonbc::driver::{CollectiveOp, MicrobenchSpec};
use autonbc::prelude::*;
use bench::{banner, fmt_secs, Args, Table};

fn main() {
    let args = Args::parse();
    banner(
        "Ablation",
        "historic learning: first execution vs history-assisted re-run",
    );
    let p = args.pick(16, 64);
    let iters = args.pick(30, 300);
    let mut store = HistoryStore::new();

    let mut t = Table::new(&[
        "scenario",
        "1st run (learning)",
        "2nd run (history)",
        "saving",
        "stored winner",
    ]);
    for (msg, compute_ms) in [(1024usize, 60u64), (32 * 1024, 120), (256 * 1024, 400)] {
        let spec = MicrobenchSpec {
            platform: Platform::whale(),
            nprocs: p,
            op: CollectiveOp::Ialltoall,
            msg_bytes: msg,
            iters,
            compute_total: SimTime::from_millis(compute_ms),
            num_progress: 5,
            noise: NoiseConfig::light(msg as u64),
            reps: 4,
            placement: Placement::Block,
            imbalance: Imbalance::None,
        };
        // First execution: learn, then store the decision.
        let first = spec.run(SelectionLogic::BruteForce);
        let winner = first.winner.clone().expect("converged");
        let key = HistoryKey {
            op: spec.op.name().into(),
            platform: spec.platform.name.clone(),
            nprocs: spec.nprocs,
            msg_bytes: spec.msg_bytes,
        };
        store
            .put(key.clone(), &winner, first.post_learning / iters as f64)
            .expect("clean key");
        // Second execution: round-trip the store through its file format
        // and pin the stored winner (Tuner::with_known_winner's fast path).
        let reloaded = HistoryStore::from_string_repr(&store.to_string_repr());
        let stored = reloaded.get(&key).expect("hit").winner.clone();
        let fnset = spec.op.fnset(spec.coll_spec());
        let idx = fnset.index_of(&stored).expect("stored function exists");
        let second = spec.run(SelectionLogic::Fixed(idx));
        t.row(vec![
            format!("{} B, {} ms compute", msg, compute_ms),
            fmt_secs(first.total),
            fmt_secs(second.total),
            format!("{:+.1}%", (1.0 - second.total / first.total) * 100.0),
            stored,
        ]);
    }
    println!();
    t.print();
    println!();
    println!(
        "history store round-trips {} decision(s) through its text format;",
        store.len()
    );
    println!("the saving equals the learning-phase overhead, which matters most for");
    println!("short-running jobs (the paper's motivation for historic learning).");
    bench::write_trace_if_requested();
}
