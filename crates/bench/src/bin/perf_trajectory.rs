//! Perf trajectory of the simulation engine itself.
//!
//! Measures wall-clock and simulator-event throughput of representative
//! workloads (the building blocks of every figure binary), both serial
//! and through the parallel sweep engine, and writes the results to
//! `BENCH_engine.json` so engine performance can be tracked across
//! commits. Run via `scripts/verify.sh` or directly:
//!
//! ```text
//! cargo run --release -p bench --bin perf_trajectory [--quick] [--jobs N]
//! ```
//!
//! The large-message sweep is measured twice: raw (memoization disabled —
//! every simulation runs fresh, isolating engine throughput) and memoized
//! (repeated passes over the sweep replay cached outcomes, the mode the
//! figure binaries run in; `events_per_sec` then counts replayed events).

use autonbc::driver::{CollectiveOp, MicrobenchSpec};
use autonbc::prelude::*;
use bench::perf::PerfReport;
use bench::{banner, Args};
use fft3d::patterns::run_fft_kernel;
use std::hint::black_box;
use std::time::Instant;

/// The large-message sweep: every Ibcast implementation, fixed selection,
/// across several message sizes (all >= 256 KiB, the rendezvous regime the
/// payload engine targets).
fn sweep_specs(args: &Args) -> Vec<MicrobenchSpec> {
    let sizes: &[usize] = if args.quick {
        &[256 * 1024]
    } else {
        &[256 * 1024, 512 * 1024, 1024 * 1024]
    };
    let iters = args.pick3(10, 30, 60);
    sizes
        .iter()
        .map(|&msg_bytes| MicrobenchSpec {
            platform: Platform::whale(),
            nprocs: args.pick3(8, 16, 32),
            op: CollectiveOp::Ibcast,
            msg_bytes,
            iters,
            compute_total: SimTime::from_millis(iters as u64),
            num_progress: 5,
            noise: NoiseConfig::light(2015),
            reps: 3,
            placement: Placement::Block,
            imbalance: Imbalance::None,
        })
        .collect()
}

fn run_sweep(specs: &[MicrobenchSpec], jobs: usize) {
    for spec in specs {
        black_box(spec.run_all_fixed_jobs(jobs));
    }
}

/// The sweep-scale workload: 64 independent sweep points (4 message sizes
/// × 2 process counts × 8 noise seeds) at realistic `World` sizes, each
/// running one fixed Ibcast implementation (rotated per point). Large
/// enough that pool startup, metrics flushing and world construction are
/// amortized — the entry measures engine scaling, not thread-spawn
/// overhead.
fn sweep_scale_points(args: &Args) -> Vec<MicrobenchSpec> {
    let iters = args.pick3(4, 8, 16);
    let sizes: [usize; 4] = [128 * 1024, 256 * 1024, 512 * 1024, 1024 * 1024];
    // Quick mode keeps all 64 points but at 8 ranks; standard mixes in
    // 16-rank worlds.
    let nprocs: [usize; 2] = if args.quick { [8, 8] } else { [8, 16] };
    let mut points = Vec::with_capacity(64);
    for (k, &np) in nprocs.iter().enumerate() {
        for (m, &msg_bytes) in sizes.iter().enumerate() {
            for s in 0..8u64 {
                points.push(MicrobenchSpec {
                    platform: Platform::whale(),
                    nprocs: np,
                    op: CollectiveOp::Ibcast,
                    msg_bytes,
                    iters,
                    compute_total: SimTime::from_millis(iters as u64),
                    num_progress: 5,
                    noise: NoiseConfig::light(simcore::par::derive_seed(
                        4000 + k as u64,
                        (m as u64) * 8 + s,
                    )),
                    reps: 2,
                    placement: Placement::Block,
                    imbalance: Imbalance::None,
                });
            }
        }
    }
    points
}

/// FNV-1a over a list of result bit patterns: a stable order-sensitive
/// digest for the cross-`jobs` byte-identity check.
fn digest64(totals: &[u64]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &t in totals {
        for b in t.to_le_bytes() {
            h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    h
}

/// The tiny-sweep workload: many consecutive sub-millisecond sweeps (each
/// spec's fixed-implementation fan-out lasts ~100 µs, far below the
/// pool-handoff floor), so `par_map_costed` must keep every one on the
/// serial path at every `jobs` value (the serial cutoff). Its BENCH rows
/// assert speedup >= 0.95x at jobs 2 and 8: before the cutoff existed,
/// sweeps this small *lost* time to pool handoff at every parallel jobs
/// value. Several specs per pass so the measured wall is ~10 ms — noise
/// at the single-sweep scale would swamp the parity gate.
fn tiny_sweep_specs() -> Vec<MicrobenchSpec> {
    (0..12u64)
        .map(|s| MicrobenchSpec {
            platform: Platform::whale(),
            nprocs: 4,
            op: CollectiveOp::Ibcast,
            msg_bytes: 4 * 1024,
            iters: 6,
            compute_total: SimTime::from_millis(1),
            num_progress: 2,
            noise: NoiseConfig::light(simcore::par::derive_seed(4100, s)),
            reps: 1,
            placement: Placement::Block,
            imbalance: Imbalance::None,
        })
        .collect()
}

fn fft_cfg(args: &Args) -> FftKernelConfig {
    FftKernelConfig {
        n: args.pick3(48, 96, 192),
        planes_per_rank: 4,
        iters: args.pick3(6, 12, 40),
        tile: 2,
        progress_per_tile: 2,
        reps: 2,
        placement: Placement::Block,
    }
}

fn main() {
    let args = Args::parse();
    let jobs = args.effective_jobs();
    banner(
        "BENCH_engine",
        "engine perf trajectory: events/sec, serial vs parallel sweep",
    );
    println!(
        "worker threads: {jobs} (host hardware parallelism {})",
        simcore::par::hardware_parallelism()
    );

    let mut report = PerfReport::new();
    // Per-phase wall-time accounting for `--profile`: "build" is the
    // untimed pre-warm/pre-build work, "sim" the measured regions, and
    // "merge" the digesting, stats and report rendering at the end.
    let t_main = Instant::now();
    let mut build_secs = 0.0f64;

    // Each workload is sampled a few times and the fastest pass is kept
    // (the workloads are deterministic, so only wall-clock varies): the
    // quick-sized runs finish in milliseconds and a single sample on a
    // shared host is too noisy for the verify.sh regression guard.
    const SAMPLES: usize = 3;

    // 1. Event-queue hot loop (no simulation: measures the packed-key
    // heap). No `World::run` happens here, so `sim_events` stays 0; the
    // entry reports raw queue operations per second instead (one push +
    // one pop per item per round).
    const QUEUE_ROUNDS: u64 = 200;
    const QUEUE_ITEMS: u64 = 1024;
    const QUEUE_OPS: u64 = QUEUE_ROUNDS * QUEUE_ITEMS * 2;
    // This row is the shortest in the suite (~10 ms) and the regression
    // guard's noisiest: on a shared host, best-of-3 still swings ±30%.
    // More samples are nearly free at this size and pin the fastest pass.
    const QUEUE_SAMPLES: usize = 9;
    let e = report.measure_best_of_ops("event_queue_push_pop", 1, QUEUE_SAMPLES, QUEUE_OPS, || {
        let mut q = simcore::EventQueue::with_capacity(QUEUE_ITEMS as usize);
        let mut acc = 0u64;
        for round in 0..QUEUE_ROUNDS {
            // Times must stay ahead of the queue's watermark (popping
            // advances "now"), so each round occupies its own window.
            let base = round * 4096;
            for i in 0..QUEUE_ITEMS {
                q.push(simcore::SimTime::from_nanos(base + (i * 7919) % 4096), i);
            }
            while let Some((_, v)) = q.pop() {
                acc = acc.wrapping_add(v);
            }
        }
        black_box(acc);
    });
    println!(
        "event_queue_push_pop : {:.3} s, {} queue ops, {:.0} ops/s",
        e.wall_secs, e.queue_ops, e.events_per_sec
    );

    // 2. Verification sweep: every Ibcast implementation, fixed selection,
    // multiple large message sizes. Raw engine throughput first — memo
    // disabled so every simulation runs fresh. Serial baseline, then the
    // parallel sweep engine.
    let specs = sweep_specs(&args);
    adcl::simmemo::set_enabled(false);
    // Untimed pre-build: before any clock starts, every thread the sweep
    // will use leases warm worlds, pre-warms payload slabs and interns
    // the schedules, so the measured region below is simulation only.
    let t = Instant::now();
    MicrobenchSpec::prewarm_sweep(jobs, &specs);
    build_secs += t.elapsed().as_secs_f64();
    let e1 = report.measure_best_of("ibcast_all_fixed", 1, SAMPLES, || run_sweep(&specs, 1));
    println!(
        "ibcast_all_fixed @1  : {:.3} s, {} events, {:.0} ev/s ({} sweep points)",
        e1.wall_secs,
        e1.sim_events,
        e1.events_per_sec,
        specs.len()
    );
    if jobs > 1 {
        let ej = report.measure_best_of("ibcast_all_fixed", jobs, SAMPLES, || {
            run_sweep(&specs, jobs)
        });
        println!(
            "ibcast_all_fixed @{jobs} : {:.3} s, {:.0} ev/s  (speedup {:.2}x)",
            ej.wall_secs,
            ej.events_per_sec,
            report.speedup("ibcast_all_fixed").unwrap_or(0.0)
        );
    }

    // 2b. The same sweep, memoized: repeated passes replay cached outcomes
    // instead of re-simulating (deterministic runs are pure functions of
    // their fingerprint). Pass 1 primes the cache; passes 2..n replay.
    // `events_per_sec` counts replayed events, so this row shows the
    // effective throughput the figure binaries see on re-runs.
    adcl::simmemo::set_enabled(true);
    const MEMO_PASSES: usize = 4;
    let em = report.measure_best_of("ibcast_sweep_memoized", 1, SAMPLES, || {
        // Start every sample from a cold cache so each one measures the
        // same prime-then-replay composition.
        adcl::simmemo::clear();
        for _ in 0..MEMO_PASSES {
            run_sweep(&specs, 1);
        }
    });
    println!(
        "ibcast_sweep_memoized: {:.3} s, {} fresh + {} replayed events, {:.0} ev/s effective",
        em.wall_secs, em.sim_events, em.replayed_events, em.events_per_sec
    );
    adcl::simmemo::clear_enabled_override();

    // 2c. Sweep-scale workload: 64 independent sweep points at realistic
    // World sizes, the workload class the parallel engine exists for. The
    // small entries above finish in milliseconds and mostly measure
    // fixed costs; this one is large enough to amortize pool startup, so
    // its `speedup_vs_serial` reflects engine scaling (on multi-core
    // hosts — a 1-CPU container reports ~1x by construction). Memo stays
    // off so every point simulates fresh, and the per-point totals are
    // digested and compared across jobs values: any cross-thread state
    // leak that broke the determinism contract fails the run here.
    adcl::simmemo::set_enabled(false);
    let points = sweep_scale_points(&args);
    // Untimed pre-build for the scale sweep, covering every jobs value
    // measured below (the @2 row runs even when --jobs 1).
    let t = Instant::now();
    MicrobenchSpec::prewarm_sweep(jobs.max(2), &points);
    build_secs += t.elapsed().as_secs_f64();
    let nfuncs = CollectiveOp::Ibcast
        .fnset(nbc::schedule::CollSpec::new(8, 128 * 1024))
        .len();
    let run_points = |jobs: usize| -> Vec<u64> {
        simcore::par::par_map(jobs, &points, |i, spec| {
            spec.run(SelectionLogic::Fixed(i % nfuncs)).total.to_bits()
        })
    };
    const SS_SAMPLES: usize = 3;
    let totals = std::cell::RefCell::new(Vec::new());
    let e1 = report.measure_best_of("sweep_scale", 1, SS_SAMPLES, || {
        *totals.borrow_mut() = run_points(1);
    });
    let serial_digest = digest64(&totals.borrow());
    println!(
        "sweep_scale @1       : {:.3} s, {} events, {:.0} ev/s ({} points, digest {serial_digest:#018x})",
        e1.wall_secs,
        e1.sim_events,
        e1.events_per_sec,
        points.len()
    );
    let mut par_jobs = vec![2];
    if jobs > 2 {
        par_jobs.push(jobs);
    }
    for j in par_jobs {
        let ej = report.measure_best_of("sweep_scale", j, SS_SAMPLES, || {
            *totals.borrow_mut() = run_points(j);
        });
        let d = digest64(&totals.borrow());
        if d != serial_digest {
            eprintln!(
                "FAIL: sweep_scale digest differs at jobs={j}: {d:#018x} != {serial_digest:#018x}"
            );
            std::process::exit(1);
        }
        println!(
            "sweep_scale @{j}       : {:.3} s, {:.0} ev/s  (speedup {:.2}x, digest matches serial)",
            ej.wall_secs,
            ej.events_per_sec,
            ej.speedup_vs_serial.unwrap_or(0.0)
        );
    }
    println!("sweep_scale: jobs-invariance OK ({} points)", points.len());
    adcl::simmemo::clear_enabled_override();

    // 2d. Tiny sweep: sub-millisecond total, so the serial-cutoff
    // heuristic must keep every jobs value on the serial path — pool
    // handoff would cost more than the sweep itself. The rows double as a
    // hard regression gate: any parallel jobs value slower than 0.95x of
    // serial means the cutoff stopped protecting small sweeps.
    adcl::simmemo::set_enabled(false);
    let tiny = tiny_sweep_specs();
    let run_tiny = |j: usize| {
        for spec in &tiny {
            black_box(spec.run_all_fixed_jobs(j));
        }
    };
    // Sub-ms wall times are noisy even as best-of, and host-load drift
    // between measurement blocks would bias whichever jobs value runs
    // last. Warm up once (worlds, schedules) outside any measurement,
    // then interleave the samples round-robin across jobs values so
    // drift hits every row equally, keeping the per-row minimum.
    run_tiny(1);
    const TINY_SAMPLES: usize = 5;
    const TINY_JOBS: [usize; 3] = [1, 2, 8];
    // All three rows run the identical serial code path (that is the
    // point of the cutoff), so their true costs are equal and the gate
    // is purely a noise-rejection problem. The per-row *median* of
    // interleaved samples is the estimator: interleaving spreads host-
    // load drift across all rows equally, and the median — unlike the
    // minimum the other entries use — cannot be faked by one lucky fast
    // serial sample during a CPU burst on a loaded single-core host.
    // A genuine cutoff regression (pool handoff re-entering the sweep)
    // shifts the parallel medians persistently, which still fails. Up to
    // 3 sampling rounds before declaring failure.
    fn median(samples: &mut [f64]) -> f64 {
        samples.sort_by(f64::total_cmp);
        samples[samples.len() / 2]
    }
    let mut samples: [Vec<f64>; TINY_JOBS.len()] = Default::default();
    let mut events = [0u64; TINY_JOBS.len()];
    let mut med = [0.0f64; TINY_JOBS.len()];
    for round in 0..3 {
        for _ in 0..TINY_SAMPLES {
            for (k, &j) in TINY_JOBS.iter().enumerate() {
                let ev0 = mpisim::sim_events_total();
                let t0 = Instant::now();
                run_tiny(j);
                samples[k].push(t0.elapsed().as_secs_f64());
                events[k] = mpisim::sim_events_total() - ev0;
            }
        }
        for k in 0..TINY_JOBS.len() {
            med[k] = median(&mut samples[k]);
        }
        if med.iter().all(|&w| w <= med[0] / 0.95) {
            break;
        }
        eprintln!("tiny_sweep: round {round} below parity, resampling (host noise?)");
    }
    let e1 = report.record_timed("tiny_sweep", 1, med[0], events[0]);
    println!(
        "tiny_sweep @1        : {:.3} s, {} events ({} sweep points)",
        e1.wall_secs,
        e1.sim_events,
        tiny.len()
    );
    for (k, &j) in TINY_JOBS.iter().enumerate().skip(1) {
        let ej = report.record_timed("tiny_sweep", j, med[k], events[k]);
        let sp = ej.speedup_vs_serial.unwrap_or(0.0);
        println!(
            "tiny_sweep @{j}        : {:.3} s  (speedup {sp:.2}x, serial cutoff)",
            ej.wall_secs
        );
        if sp < 0.95 {
            eprintln!(
                "FAIL: tiny_sweep speedup at jobs={j} is {sp:.2}x < 0.95x: the serial \
                 cutoff must keep sub-ms sweeps at parity with jobs=1"
            );
            std::process::exit(1);
        }
    }
    println!("tiny_sweep: serial-cutoff parity OK (>= 0.95x at jobs = 2 and 8)");
    adcl::simmemo::clear_enabled_override();

    // 2e. world_scale: one >= 4096-rank world on the synthetic HPC machine
    // (synth-hpc: 512 nodes x 32 cores), run serially and partitioned
    // through the intra-world conservative engine. Two passes:
    //
    //   - an untimed identity pass that forces Fixed(2) and Fixed(8)
    //     regardless of host size — the event digests must match the
    //     serial run bit-for-bit (the conservative-sync contract verify.sh
    //     gates on) and the partition diagnostics feed the --profile
    //     imbalance stats;
    //   - timed rows at partitions 1/2/8, hardware-clamped like the sweep
    //     engine (a 1-CPU host would only measure thread oversubscription;
    //     the clamped rows land in the report as `clamped: true` and read
    //     ~1x instead of a fake sub-serial regression).
    let ws_ranks = 4096usize;
    let ws_rounds = args.pick3(3, 6, 10);
    let (ws_small, ws_large) = (2 * 1024usize, 64 * 1024usize);
    let ws_platform = Platform::synth_hpc();
    let hw = simcore::par::hardware_parallelism();
    let run_world_scale = |mode: mpisim::ParMode| {
        let mut world = mpisim::World::new(
            ws_platform.clone(),
            ws_ranks,
            Placement::RoundRobin,
            NoiseConfig::none(),
        );
        world.set_par_mode(Some(mode));
        let mut b = mpisim::NeighborExchange::new(ws_ranks, ws_rounds, ws_small, ws_large);
        let t0 = Instant::now();
        world.run(&mut b).expect("world_scale run failed");
        let wall = t0.elapsed().as_secs_f64();
        let digest = world.event_digest();
        let events = world.events_processed();
        let info = world.par_info().cloned();
        let rank_events = world.rank_event_counts();
        (wall, digest, events, info, rank_events)
    };
    let (_, ws_digest, ws_events, _, ws_rank_events) = run_world_scale(mpisim::ParMode::Off);
    let mut ws_part_infos: Vec<mpisim::ParRunInfo> = Vec::new();
    for n in [2usize, 8] {
        let (_, d, _, info, _) = run_world_scale(mpisim::ParMode::Fixed(n));
        if d != ws_digest {
            eprintln!(
                "FAIL: world_scale digest differs at {n} partitions: {d:#018x} != {ws_digest:#018x}"
            );
            std::process::exit(1);
        }
        let info = info.expect("forced Fixed(n) run must report partition diagnostics");
        println!(
            "world_scale parts={n} : digest matches serial, {} windows, events/part {:?}, peak depth/part {:?}",
            info.windows, info.per_part_events, info.per_part_max_depth
        );
        ws_part_infos.push(info);
    }
    println!("world_scale: partition-invariance OK ({ws_ranks} ranks, parts 1/2/8)");
    const WS_SAMPLES: usize = 2;
    for n in [1usize, 2, 8] {
        // Timed rows: clamp to the hardware like plan_participants does.
        let eff = n.min(hw);
        let mode = if eff < 2 {
            mpisim::ParMode::Off
        } else {
            mpisim::ParMode::Fixed(eff)
        };
        let mut wall = f64::INFINITY;
        for _ in 0..WS_SAMPLES {
            wall = wall.min(run_world_scale(mode).0);
        }
        let e = report.record_timed("world_scale", n, wall, ws_events);
        println!(
            "world_scale @{n}       : {:.3} s, {} events, {:.0} ev/s  (speedup {:.2}x{}{})",
            e.wall_secs,
            e.sim_events,
            e.events_per_sec,
            e.speedup_vs_serial.unwrap_or(0.0),
            if eff < n { ", hw-clamped" } else { "" },
            if e.clamped { ", clamped row" } else { "" },
        );
    }

    // 3. FFT kernel point: the §IV-B unit of work (one pattern, two modes).
    let cfg = fft_cfg(&args);
    let procs = args.pick3(8, 8, 16);
    let run_pair = |jobs: usize, est_nanos: u64| {
        let work = [FftMode::LibNbc, FftMode::Adcl(SelectionLogic::BruteForce)];
        black_box(simcore::par::par_map_costed(
            jobs,
            &work,
            est_nanos,
            |_, &mode| {
                run_fft_kernel(
                    &Platform::crill(),
                    procs,
                    &cfg,
                    FftPattern::WindowTiled,
                    mode,
                    NoiseConfig::none(),
                )
                .total_time
            },
        ));
    };
    let e1 = report.measure_best_of("fft_windowtiled_pair", 1, SAMPLES, || {
        run_pair(1, simcore::par::COST_UNKNOWN)
    });
    println!(
        "fft_windowtiled @1   : {:.3} s, {} events, {:.0} ev/s",
        e1.wall_secs, e1.sim_events, e1.events_per_sec
    );
    if jobs > 1 {
        let j = jobs.min(2);
        // Self-calibrated per-item cost from the serial pass (two items,
        // so one costs about half the serial wall time): quick-sized
        // pairs fall under the handoff floor and stay serial; full-sized
        // pairs clear it and split across the pool.
        let est = ((e1.wall_secs / 2.0) * 1e9) as u64;
        let ej = report.measure_best_of("fft_windowtiled_pair", j, SAMPLES, || run_pair(j, est));
        println!(
            "fft_windowtiled @{j}   : {:.3} s, {:.0} ev/s  (speedup {:.2}x)",
            ej.wall_secs,
            ej.events_per_sec,
            report.speedup("fft_windowtiled_pair").unwrap_or(0.0)
        );
    }

    // 4. adcld_serve: the tuning daemon under closed-loop cold/warm/mixed
    // client load (in-process server, real TCP loopback). The warm phase
    // doubles as a hard gate: repeat queries must be answered from the
    // history store or the sim memo — any fresh sweep on warm traffic
    // means the daemon's durable-learning path regressed.
    println!();
    let serve = adcld::loadgen::bench_serve(args.quick, jobs, 4).expect("adcld_serve bench");
    for p in &serve.phases {
        println!(
            "adcld_serve {:<6}: {:>4} req, {:>8.1} req/s, p50 {:>6} us, p99 {:>6} us \
             (hist {}, memo {}, fresh {}, err {})",
            p.name,
            p.requests,
            p.rps,
            p.p50_us,
            p.p99_us,
            p.history_hits,
            p.memo_replays,
            p.fresh_sweeps + p.guideline_flagged,
            p.errors
        );
    }
    let warm = serve.phase("warm").expect("warm phase present");
    if warm.errors > 0 || warm.warm_served() != warm.requests {
        eprintln!(
            "FAIL: adcld_serve warm traffic re-simulated {} of {} requests \
             (expected history/memo hits only)",
            warm.requests - warm.warm_served(),
            warm.requests
        );
        std::process::exit(1);
    }
    println!(
        "adcld_serve: warm traffic served from history/memo only ({} requests)",
        warm.requests
    );
    report.set_section("adcld_serve", serve.render_section());

    // 5. Racing selection vs brute force: the cold-decision accelerator.
    // Each config runs fresh (no memo) under both logics with a hard
    // decision-parity gate: the racing winner must equal the brute-force
    // winner. "Events per decision" is the cost of *deciding*: each run
    // is then re-run truncated at its convergence iteration (identical
    // prefix — per-iteration compute and noise seeds are unchanged), and
    // the truncated `sim_events` is the decision cost. Racing must save
    // >= 30% of those events in aggregate. Configs use the collectives
    // with well-separated implementations (the regime racing targets;
    // near-tie families like the 21 Ibcast tree variants are sampled at
    // different iterations under interleaving and may legitimately break
    // ties the other way).
    println!();
    let block = 2usize;
    let racing_reps = 6usize;
    let mut racing_rows = Vec::new();
    let (mut brute_total, mut raced_total) = (0u64, 0u64);
    let mut parity_ok = true;
    for (platform, op, nprocs, msg_bytes, seed) in [
        (Platform::whale(), CollectiveOp::Ialltoall, 8, 4096, 11u64),
        (Platform::whale(), CollectiveOp::Ireduce, 8, 16384, 12),
        (Platform::crill(), CollectiveOp::Iallgather, 8, 8192, 13),
        (
            Platform::bluegene_p(),
            CollectiveOp::Iallreduce,
            8,
            8192,
            14,
        ),
    ] {
        let label = format!("{:?}/{}/m{}", op, platform.name, msg_bytes);
        let spec_with_iters = |iters: usize| MicrobenchSpec {
            platform: platform.clone(),
            nprocs,
            op,
            msg_bytes,
            iters,
            // Keep per-iteration compute at 1 ms regardless of length so
            // a truncated run replays the full run's prefix exactly.
            compute_total: SimTime::from_millis(iters as u64),
            num_progress: 4,
            noise: NoiseConfig::light(seed),
            reps: racing_reps,
            placement: Placement::Block,
            imbalance: Imbalance::None,
        };
        let k = spec_with_iters(1)
            .op
            .fnset(spec_with_iters(1).coll_spec())
            .len();
        let full_iters = k * racing_reps + 2;
        let brute = spec_with_iters(full_iters).run(SelectionLogic::BruteForce);
        let scope = simcore::metrics::Scope::begin();
        let raced = spec_with_iters(full_iters).run(SelectionLogic::Racing(block));
        let eliminated = scope
            .delta()
            .into_iter()
            .find(|(n, _)| *n == "adcl.sweep.eliminated_candidates")
            .map_or(0, |(_, v)| v);
        if raced.winner != brute.winner {
            eprintln!(
                "FAIL: racing winner {:?} != brute-force winner {:?} on {label}",
                raced.winner, brute.winner
            );
            parity_ok = false;
            continue;
        }
        // Decision cost: replay each logic truncated right after commit.
        let decide = |logic: SelectionLogic, converged_at: Option<usize>| {
            let c = converged_at.expect("full run converged");
            spec_with_iters(c + 1).run(logic)
        };
        let brute_dec = decide(SelectionLogic::BruteForce, brute.converged_at);
        let raced_dec = decide(SelectionLogic::Racing(block), raced.converged_at);
        if brute_dec.winner != brute.winner || raced_dec.winner != raced.winner {
            eprintln!("FAIL: truncated decision replay diverged on {label}");
            parity_ok = false;
            continue;
        }
        let saved =
            100.0 * (1.0 - raced_dec.sim_events as f64 / brute_dec.sim_events.max(1) as f64);
        println!(
            "racing {label:<32}: brute {:>5} ev, raced {:>5} ev (-{saved:.1}%), \
             {eliminated}/{k} eliminated, winner {}",
            brute_dec.sim_events,
            raced_dec.sim_events,
            raced.winner.as_deref().unwrap_or("-")
        );
        brute_total += brute_dec.sim_events;
        raced_total += raced_dec.sim_events;
        racing_rows.push(format!(
            "{{ \"config\": \"{label}\", \"candidates\": {k}, \"brute_events\": {}, \
             \"raced_events\": {}, \"eliminated\": {eliminated}, \
             \"winner\": \"{}\", \"parity\": true }}",
            brute_dec.sim_events,
            raced_dec.sim_events,
            raced.winner.as_deref().unwrap_or("")
        ));
    }
    if !parity_ok {
        std::process::exit(1);
    }
    println!("racing: decision parity OK ({} configs)", racing_rows.len());
    let saved_total = 100.0 * (1.0 - raced_total as f64 / brute_total.max(1) as f64);
    if saved_total < 30.0 {
        eprintln!(
            "FAIL: racing saved only {saved_total:.1}% simulated events per decision \
             (>= 30% required): brute {brute_total}, raced {raced_total}"
        );
        std::process::exit(1);
    }
    println!("racing: sim events/decision -{saved_total:.1}% vs brute force (>= 30% required) OK");
    report.set_section(
        "racing",
        format!(
            "{{ \"block\": {block}, \"brute_events\": {brute_total}, \
             \"raced_events\": {raced_total}, \"saved_pct\": {saved_total:.2}, \
             \"parity\": true, \"configs\": [{}] }}",
            racing_rows.join(", ")
        ),
    );

    let t_merge = Instant::now();
    let (hits, misses) = nbc::cache::stats();
    let memo = adcl::simmemo::stats();
    println!();
    println!(
        "schedule cache: {hits} hits / {misses} misses ({:.1}% hit rate)",
        if hits + misses > 0 {
            hits as f64 / (hits + misses) as f64 * 100.0
        } else {
            0.0
        }
    );
    println!(
        "sim memo      : {} hits / {} misses ({:.1}% hit rate), {} events replayed",
        memo.hits,
        memo.misses,
        memo.hit_rate() * 100.0,
        memo.replayed_events
    );
    println!(
        "payload allocs: {} (pool misses + naive copies)",
        simcore::stats::payload_allocs()
    );

    // Full registry snapshot (process-lifetime totals; also embedded in the
    // JSON report's "metrics" block).
    println!();
    println!("metrics registry:");
    for (name, reading) in simcore::metrics::snapshot() {
        match reading {
            simcore::metrics::Reading::Counter(v) => println!("  {name:<28} {v}"),
            simcore::metrics::Reading::Gauge(v) => println!("  {name:<28} {v} (gauge)"),
            simcore::metrics::Reading::Histogram { count, sum, max } => {
                let mean = sum.checked_div(count).unwrap_or(0);
                println!("  {name:<28} n={count} mean={mean} max={max}");
            }
        }
    }

    let path = "BENCH_engine.json";
    report.write(path).expect("write BENCH_engine.json");
    println!("wrote {path}");

    if args.profile {
        // Per-phase wall-time breakdown next to the main report: "build"
        // is the untimed pre-warm/pre-build, "merge" the digest/stats/
        // report tail, "sim" everything in between (the measured regions
        // and their sampling overhead). Schema v2 adds the world_scale
        // imbalance block: per-rank event-count summary stats and, for
        // each forced partition count, the per-partition event totals and
        // peak queue depths from the engine's partition diagnostics.
        let merge_secs = t_merge.elapsed().as_secs_f64();
        let sim_secs = (t_main.elapsed().as_secs_f64() - merge_secs - build_secs).max(0.0);
        let ppath = "BENCH_profile.json";
        let (re_min, re_max) = ws_rank_events
            .iter()
            .fold((u64::MAX, 0u64), |(lo, hi), &v| (lo.min(v), hi.max(v)));
        let re_total: u64 = ws_rank_events.iter().sum();
        let re_mean = re_total as f64 / ws_rank_events.len().max(1) as f64;
        let fmt_u64s = |v: &[u64]| {
            v.iter()
                .map(|x| x.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        };
        let mut parts = String::new();
        for (i, info) in ws_part_infos.iter().enumerate() {
            let ev_max = info.per_part_events.iter().copied().max().unwrap_or(0);
            let ev_mean = info.per_part_events.iter().sum::<u64>() as f64
                / info.per_part_events.len().max(1) as f64;
            let imb = if ev_mean > 0.0 {
                ev_max as f64 / ev_mean
            } else {
                0.0
            };
            let comma = if i + 1 == ws_part_infos.len() {
                ""
            } else {
                ","
            };
            parts.push_str(&format!(
                "      {{ \"nparts\": {}, \"windows\": {}, \"lookahead_ns\": {}, \
                 \"per_part_events\": [{}], \"per_part_max_depth\": [{}], \
                 \"event_imbalance\": {:.4} }}{}\n",
                info.nparts,
                info.windows,
                info.lookahead.as_nanos(),
                fmt_u64s(&info.per_part_events),
                fmt_u64s(&info.per_part_max_depth),
                imb,
                comma
            ));
        }
        let body = format!(
            "{{\n  \"schema\": \"adcl-bench-profile-v2\",\n  \"jobs\": {jobs},\n  \
             \"phases\": [\n    {{ \"name\": \"build\", \"wall_secs\": {build_secs:.6} }},\n    \
             {{ \"name\": \"sim\", \"wall_secs\": {sim_secs:.6} }},\n    \
             {{ \"name\": \"merge\", \"wall_secs\": {merge_secs:.6} }}\n  ],\n  \
             \"world_scale\": {{\n    \"ranks\": {ranks},\n    \"rank_events\": \
             {{ \"total\": {re_total}, \"min\": {re_min}, \"max\": {re_max}, \
             \"mean\": {re_mean:.2} }},\n    \"partitions\": [\n{parts}    ]\n  }}\n}}\n",
            ranks = ws_rank_events.len(),
        );
        std::fs::write(ppath, body).expect("write BENCH_profile.json");
        println!(
            "wrote {ppath} (build {build_secs:.3}s, sim {sim_secs:.3}s, merge {merge_secs:.3}s, \
             world_scale imbalance over {} partition plans)",
            ws_part_infos.len()
        );
    }
    bench::write_trace_if_requested();
}
