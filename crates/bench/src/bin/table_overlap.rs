//! Overlap analysis — where the time goes per implementation.
//!
//! The paper's whole premise is that non-blocking collectives only pay off
//! when communication actually overlaps computation. This table uses the
//! simulator's per-rank time accounting to decompose each implementation's
//! run into compute / library CPU / blocked-in-wait time and reports the
//! exposed-communication fraction, for a small and a large message size
//! and two progress-call counts.

use autonbc::driver::{CollectiveOp, MicrobenchSpec};
use autonbc::prelude::*;
use bench::{banner, Args, Table};

fn main() {
    let args = Args::parse();
    banner(
        "Overlap analysis",
        "compute / library / blocked decomposition per implementation",
    );
    let p = args.pick(16, 64);
    let iters = args.pick(20, 200);

    for (msg, compute_ms, label) in [
        (1024usize, 40u64, "1 KiB (eager)"),
        (256 * 1024, 400, "256 KiB (rendezvous)"),
    ] {
        for num_progress in [1usize, 10] {
            let spec = MicrobenchSpec {
                platform: Platform::whale(),
                nprocs: p,
                op: CollectiveOp::Ialltoall,
                msg_bytes: msg,
                iters,
                compute_total: SimTime::from_millis(compute_ms),
                num_progress,
                noise: NoiseConfig::none(),
                reps: 1,
                placement: Placement::Block,
                imbalance: Imbalance::None,
            };
            println!();
            println!(
                "{label}, {} progress calls, {} procs on whale",
                num_progress, p
            );
            let mut t = Table::new(&["implementation", "compute", "library", "blocked", "exposed"]);
            let fnset = spec.op.fnset(spec.coll_spec());
            for i in 0..fnset.len() {
                let out = spec.run(SelectionLogic::Fixed(i));
                let a = out.accounting;
                t.row(vec![
                    fnset.functions[i].name.clone(),
                    format!("{}", a.compute),
                    format!("{}", a.library),
                    format!("{}", a.blocked),
                    format!("{:.1}%", a.exposed_fraction() * 100.0),
                ]);
            }
            t.print();
        }
    }
    println!();
    println!("expected: eager payloads overlap even with one progress call (blocked");
    println!("time ~ 0); rendezvous payloads are exposed at one call and recover");
    println!("with ten; the linear algorithm has the least library time per round");
    println!("but the most concurrent traffic.");
    bench::write_trace_if_requested();
}
