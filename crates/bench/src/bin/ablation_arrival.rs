//! Ablation — process arrival patterns (Faraj et al., cited by the paper
//! as a key application characteristic).
//!
//! Ranks rarely enter a collective simultaneously: micro load imbalances
//! skew their arrival times. This ablation imposes a systematic imbalance
//! (a linear compute ramp across ranks, and a single straggler) and shows
//! how the implementation ranking — and hence the correct tuning decision
//! — shifts with the arrival pattern.

use autonbc::driver::{CollectiveOp, MicrobenchSpec};
use autonbc::prelude::*;
use bench::{banner, fmt_secs, Args, Table};

fn main() {
    let args = Args::parse();
    banner(
        "Ablation",
        "process arrival patterns: implementation ranking vs load imbalance",
    );
    let p = args.pick(16, 64);
    let iters = args.pick(24, 200);

    let base = MicrobenchSpec {
        platform: Platform::whale(),
        nprocs: p,
        op: CollectiveOp::Ialltoall,
        msg_bytes: 128 * 1024,
        iters,
        compute_total: SimTime::from_millis(8 * iters as u64),
        num_progress: 5,
        noise: NoiseConfig::none(),
        reps: 4,
        placement: Placement::Block,
        imbalance: Imbalance::None,
    };

    let patterns: Vec<(&str, Imbalance)> = vec![
        ("balanced", Imbalance::None),
        ("ramp ±5%", Imbalance::Ramp { spread: 0.10 }),
        ("ramp ±20%", Imbalance::Ramp { spread: 0.40 }),
        (
            "straggler 1.5x",
            Imbalance::Straggler {
                rank: p / 2,
                factor: 1.5,
            },
        ),
    ];

    println!();
    println!("Ialltoall on whale, {p} procs, 128 KiB per pair, 5 progress calls");
    let mut t = Table::new(&[
        "arrival pattern",
        "linear",
        "pairwise",
        "dissemination",
        "best",
        "ADCL pick",
    ]);
    for (label, imbalance) in patterns {
        let mut s = base.clone();
        s.imbalance = imbalance;
        let rows = s.run_all_fixed();
        let best = rows
            .iter()
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap()
            .0
            .clone();
        let tuned = s.run(SelectionLogic::BruteForce);
        t.row(vec![
            label.into(),
            fmt_secs(rows[0].1),
            fmt_secs(rows[1].1),
            fmt_secs(rows[2].1),
            best,
            tuned.winner.unwrap_or_else(|| "?".into()),
        ]);
    }
    println!();
    t.print();
    println!();
    println!("expected: imbalance inflates every implementation (the collective");
    println!("waits for the slowest arrival), and the margins between algorithms");
    println!("compress or flip — another reason tuning must happen at run time in");
    println!("the application's own arrival conditions, not in a synthetic bench.");
    bench::write_trace_if_requested();
}
