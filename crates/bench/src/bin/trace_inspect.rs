//! Offline trace analyzer for the observability layer.
//!
//! Reads a combined trace file written by any figure binary or `autonbc`
//! under `NBC_TRACE=<file>` / `--trace-out <file>` and prints a summary:
//! per-rank time accounting (compute / library / blocked and the overlap
//! ratio), the largest rendezvous stalls and unexpected-message waits, and
//! the tuner decision audit log. Exits non-zero if the file does not parse
//! as the expected document.
//!
//! ```text
//! NBC_TRACE=trace.json cargo run --release --bin fig6_progress_cost
//! cargo run --release --bin trace_inspect trace.json
//! ```

use simcore::json::{self, Json};
use std::collections::BTreeMap;
use std::process::exit;

/// One parsed Chrome trace event (only the fields the summary needs).
struct Ev {
    name: String,
    cat: String,
    ph: String,
    pid: u64,
    tid: u64,
    /// Microseconds, as written by the exporter.
    ts: f64,
    dur: f64,
}

fn field_str(obj: &Json, key: &str) -> String {
    obj.get(key)
        .and_then(|v| v.as_str())
        .unwrap_or_default()
        .to_string()
}

fn field_f64(obj: &Json, key: &str) -> f64 {
    obj.get(key).and_then(|v| v.as_f64()).unwrap_or(0.0)
}

fn parse_events(doc: &Json) -> Option<Vec<Ev>> {
    let arr = doc.get("traceEvents")?.as_arr()?;
    Some(
        arr.iter()
            .map(|e| Ev {
                name: field_str(e, "name"),
                cat: field_str(e, "cat"),
                ph: field_str(e, "ph"),
                pid: field_f64(e, "pid") as u64,
                tid: field_f64(e, "tid") as u64,
                ts: field_f64(e, "ts"),
                dur: field_f64(e, "dur"),
            })
            .collect(),
    )
}

/// Process-name metadata records, by pid.
fn process_names(doc: &Json) -> BTreeMap<u64, String> {
    let mut names = BTreeMap::new();
    if let Some(arr) = doc.get("traceEvents").and_then(|v| v.as_arr()) {
        for e in arr {
            if field_str(e, "ph") == "M" && field_str(e, "name") == "process_name" {
                if let Some(label) = e
                    .get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(|n| n.as_str())
                {
                    names.insert(field_f64(e, "pid") as u64, label.to_string());
                }
            }
        }
    }
    names
}

fn fmt_us(us: f64) -> String {
    if us >= 1e6 {
        format!("{:.3} s", us / 1e6)
    } else if us >= 1e3 {
        format!("{:.2} ms", us / 1e3)
    } else {
        format!("{us:.1} us")
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(path) = args.first() else {
        eprintln!("usage: trace_inspect <trace.json>");
        exit(2);
    };
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("trace_inspect: cannot read {path}: {e}");
        exit(1);
    });
    let doc = json::parse(&text).unwrap_or_else(|e| {
        eprintln!("trace_inspect: {path} is not valid JSON: {e}");
        exit(1);
    });
    let Some(events) = parse_events(&doc) else {
        eprintln!("trace_inspect: {path} has no traceEvents array");
        exit(1);
    };
    let names = process_names(&doc);

    println!("{path}: {} events", events.len());

    // Per-(pid, tid) accounting from the cat="rank" state spans. The three
    // states tile each rank's active time, so the overlap ratio is
    // compute / (compute + library + blocked): 1.0 means communication was
    // fully hidden behind application work.
    let mut acct: BTreeMap<(u64, u64), [f64; 3]> = BTreeMap::new();
    for e in &events {
        if e.ph == "X" && e.cat == "rank" {
            let slot = match e.name.as_str() {
                "compute" => 0,
                "library" => 1,
                "blocked" => 2,
                _ => continue,
            };
            acct.entry((e.pid, e.tid)).or_default()[slot] += e.dur;
        }
    }
    let mut last_pid = u64::MAX;
    for (&(pid, tid), &[comp, lib, blk]) in &acct {
        if pid != last_pid {
            let label = names.get(&pid).cloned().unwrap_or_default();
            println!();
            println!("run {pid}: {label}");
            println!(
                "  {:>4}  {:>12} {:>12} {:>12} {:>8}",
                "rank", "compute", "library", "blocked", "overlap"
            );
            last_pid = pid;
        }
        let busy = comp + lib + blk;
        let overlap = if busy > 0.0 { comp / busy } else { 0.0 };
        println!(
            "  {:>4}  {:>12} {:>12} {:>12} {:>7.1}%",
            tid,
            fmt_us(comp),
            fmt_us(lib),
            fmt_us(blk),
            overlap * 100.0
        );
    }

    // Largest stall spans: rendezvous handshakes waiting for a progress
    // call, and receives matched against already-buffered messages.
    for (cat_name, title) in [
        (
            "rdv_stall",
            "top rendezvous stalls (RTS waiting for a progress call)",
        ),
        (
            "unexpected",
            "top unexpected-message waits (sender ahead of receiver)",
        ),
    ] {
        let mut stalls: Vec<&Ev> = events
            .iter()
            .filter(|e| e.ph == "X" && e.name == cat_name)
            .collect();
        stalls.sort_by(|a, b| b.dur.partial_cmp(&a.dur).expect("finite durations"));
        println!();
        if stalls.is_empty() {
            println!("{title}: none");
            continue;
        }
        let total: f64 = stalls.iter().map(|e| e.dur).sum();
        println!("{title}: {} spans, {} total", stalls.len(), fmt_us(total));
        for e in stalls.iter().take(5) {
            println!(
                "  run {} rank {:>3}  at {:>12}  for {:>10}",
                e.pid,
                e.tid,
                fmt_us(e.ts),
                fmt_us(e.dur)
            );
        }
    }

    // Tuner decision audit log.
    println!();
    match doc.get("adclAudit").and_then(|v| v.as_arr()) {
        None => println!("no adclAudit section"),
        Some([]) => println!("adcl audit: no decisions recorded"),
        Some(audit) => {
            println!("adcl audit: {} decision(s)", audit.len());
            for d in audit {
                println!(
                    "  [{}] {} -> {} (iter {}, margin {:+.1}%, strategy {}, filter {})",
                    field_str(d, "label"),
                    field_str(d, "op"),
                    field_str(d, "winner_name"),
                    field_f64(d, "decided_at_iter") as u64,
                    field_f64(d, "margin") * 100.0,
                    field_str(d, "strategy"),
                    field_str(d, "filter"),
                );
                if let Some(cands) = d.get("candidates").and_then(|v| v.as_arr()) {
                    for c in cands {
                        let score = c.get("score").and_then(|v| v.as_f64());
                        let rendered = match score {
                            Some(s) => format!("{:.3} ms", s * 1e3),
                            None => "unmeasured".to_string(),
                        };
                        println!(
                            "      {:<24} {:>2}/{:<2} samples kept  score {}",
                            field_str(c, "name"),
                            field_f64(c, "kept") as u64,
                            field_f64(c, "samples") as u64,
                            rendered,
                        );
                    }
                }
            }
        }
    }
}
