//! Offline trace analyzer for the observability layer.
//!
//! Reads a combined trace file written by any figure binary or `autonbc`
//! under `NBC_TRACE=<file>` / `--trace-out <file>` and prints a summary:
//! per-rank time accounting (compute / library / blocked and the overlap
//! ratio), the largest rendezvous stalls and unexpected-message waits, and
//! the tuner decision audit log. Exits non-zero if the file does not parse
//! as the expected document.
//!
//! With `--parts N` the summary becomes partition-aware: ranks are mapped
//! onto the same node-aligned partitions the intra-world parallel engine
//! would use (`mpisim::worldpar::partition_owners`; give the run's shape
//! via `--platform` and `--placement`), the accounting is rolled up per
//! partition, and each stall span is attributed by its peer: a stall whose
//! sender sits in *another* partition resolves under the engine's
//! conservative lookahead window (the null-message analogue — cross-
//! partition traffic is what the safe-time protocol waits on), while an
//! intra-partition stall is a genuine progress-engine stall that no amount
//! of partitioning changes.
//!
//! ```text
//! NBC_TRACE=trace.json cargo run --release --bin fig6_progress_cost
//! cargo run --release --bin trace_inspect trace.json
//! cargo run --release --bin trace_inspect trace.json -- --parts 4 --platform whale
//! ```

use netmodel::{Placement, Platform};
use simcore::json::{self, Json};
use std::collections::BTreeMap;
use std::process::exit;

/// One parsed Chrome trace event (only the fields the summary needs).
struct Ev {
    name: String,
    cat: String,
    ph: String,
    pid: u64,
    tid: u64,
    /// Microseconds, as written by the exporter.
    ts: f64,
    dur: f64,
    /// The `src` span argument (peer rank of a stall span), if recorded.
    src: Option<u64>,
}

fn field_str(obj: &Json, key: &str) -> String {
    obj.get(key)
        .and_then(|v| v.as_str())
        .unwrap_or_default()
        .to_string()
}

fn field_f64(obj: &Json, key: &str) -> f64 {
    obj.get(key).and_then(|v| v.as_f64()).unwrap_or(0.0)
}

fn parse_events(doc: &Json) -> Option<Vec<Ev>> {
    let arr = doc.get("traceEvents")?.as_arr()?;
    Some(
        arr.iter()
            .map(|e| Ev {
                name: field_str(e, "name"),
                cat: field_str(e, "cat"),
                ph: field_str(e, "ph"),
                pid: field_f64(e, "pid") as u64,
                tid: field_f64(e, "tid") as u64,
                ts: field_f64(e, "ts"),
                dur: field_f64(e, "dur"),
                src: e
                    .get("args")
                    .and_then(|a| a.get("src"))
                    .and_then(|v| v.as_f64())
                    .map(|v| v as u64),
            })
            .collect(),
    )
}

/// Process-name metadata records, by pid.
fn process_names(doc: &Json) -> BTreeMap<u64, String> {
    let mut names = BTreeMap::new();
    if let Some(arr) = doc.get("traceEvents").and_then(|v| v.as_arr()) {
        for e in arr {
            if field_str(e, "ph") == "M" && field_str(e, "name") == "process_name" {
                if let Some(label) = e
                    .get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(|n| n.as_str())
                {
                    names.insert(field_f64(e, "pid") as u64, label.to_string());
                }
            }
        }
    }
    names
}

fn fmt_us(us: f64) -> String {
    if us >= 1e6 {
        format!("{:.3} s", us / 1e6)
    } else if us >= 1e3 {
        format!("{:.2} ms", us / 1e3)
    } else {
        format!("{us:.1} us")
    }
}

/// Command line: path plus the optional partition-attribution flags.
struct Cli {
    path: String,
    parts: Option<usize>,
    platform: Platform,
    placement: Placement,
}

const USAGE: &str = "usage: trace_inspect <trace.json> [--parts N] [--platform NAME] \
                     [--placement block|roundrobin]";

fn parse_cli() -> Cli {
    let usage = USAGE;
    let mut path = None;
    let mut parts = None;
    let mut platform = Platform::whale();
    let mut placement = Placement::Block;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut take = |flag: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("{flag} needs a value\n{usage}");
                exit(2);
            })
        };
        match a.as_str() {
            "--parts" => match take("--parts").parse::<usize>() {
                Ok(n) if n >= 2 => parts = Some(n),
                _ => {
                    eprintln!("--parts needs an integer >= 2\n{usage}");
                    exit(2);
                }
            },
            "--platform" => {
                let name = take("--platform");
                platform = Platform::by_name(&name).unwrap_or_else(|| {
                    eprintln!(
                        "unknown platform {name:?} (presets: {})",
                        Platform::preset_names().join(", ")
                    );
                    exit(2);
                });
            }
            "--placement" => {
                placement = match take("--placement").as_str() {
                    "block" => Placement::Block,
                    "roundrobin" | "rr" => Placement::RoundRobin,
                    other => {
                        eprintln!("unknown placement {other:?} (block | roundrobin)\n{usage}");
                        exit(2);
                    }
                }
            }
            "--help" | "-h" => {
                println!("{usage}");
                exit(0);
            }
            _ if path.is_none() && !a.starts_with("--") => path = Some(a),
            other => {
                eprintln!("unknown argument {other:?}\n{usage}");
                exit(2);
            }
        }
    }
    let Some(path) = path else {
        eprintln!("{usage}");
        exit(2);
    };
    Cli {
        path,
        parts,
        platform,
        placement,
    }
}

fn main() {
    let cli = parse_cli();
    let path = &cli.path;
    // Bad input files are a usage error (exit 2 + usage line), matching
    // the CLI hardening contract of the other binaries — never a panic,
    // never a bare failure code.
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("trace_inspect: cannot read {path}: {e}\n{USAGE}");
        exit(2);
    });
    let doc = json::parse(&text).unwrap_or_else(|e| {
        eprintln!("trace_inspect: {path} is not valid JSON: {e}\n{USAGE}");
        exit(2);
    });
    let Some(events) = parse_events(&doc) else {
        eprintln!("trace_inspect: {path} has no traceEvents array\n{USAGE}");
        exit(2);
    };
    let names = process_names(&doc);

    println!("{path}: {} events", events.len());

    // Partition attribution (--parts): map the traced ranks onto the
    // node-aligned partitions the intra-world engine would use for this
    // shape. The rank count is recovered from the trace itself (highest
    // rank-timeline tid seen).
    let nranks = events
        .iter()
        .filter(|e| e.cat == "rank" || e.name == "rdv_stall" || e.name == "unexpected")
        .map(|e| e.tid as usize + 1)
        .max()
        .unwrap_or(0);
    let owners: Option<Vec<u32>> = cli.parts.and_then(|n| {
        let o = mpisim::worldpar::partition_owners(&cli.platform, nranks, cli.placement, n);
        if o.is_none() {
            println!(
                "partition attribution: {nranks} ranks on {} ({:?}) are not \
                 node-partitionable into {n} — reporting unpartitioned",
                cli.platform.name, cli.placement
            );
        }
        o
    });
    let part_of =
        |rank: u64| -> Option<u32> { owners.as_ref().and_then(|o| o.get(rank as usize)).copied() };

    // Per-(pid, tid) accounting from the cat="rank" state spans. The three
    // states tile each rank's active time, so the overlap ratio is
    // compute / (compute + library + blocked): 1.0 means communication was
    // fully hidden behind application work.
    let mut acct: BTreeMap<(u64, u64), [f64; 3]> = BTreeMap::new();
    for e in &events {
        if e.ph == "X" && e.cat == "rank" {
            let slot = match e.name.as_str() {
                "compute" => 0,
                "library" => 1,
                "blocked" => 2,
                _ => continue,
            };
            acct.entry((e.pid, e.tid)).or_default()[slot] += e.dur;
        }
    }
    let mut last_pid = u64::MAX;
    // Per-(pid, partition) rollup, flushed after each run's rank table.
    let mut part_acct: BTreeMap<u32, [f64; 3]> = BTreeMap::new();
    let flush_parts = |part_acct: &mut BTreeMap<u32, [f64; 3]>| {
        if part_acct.is_empty() {
            return;
        }
        println!("  per-partition rollup:");
        for (&p, &[comp, lib, blk]) in part_acct.iter() {
            let busy = comp + lib + blk;
            let overlap = if busy > 0.0 { comp / busy } else { 0.0 };
            println!(
                "  P{:>3}  {:>12} {:>12} {:>12} {:>7.1}%",
                p,
                fmt_us(comp),
                fmt_us(lib),
                fmt_us(blk),
                overlap * 100.0
            );
        }
        part_acct.clear();
    };
    for (&(pid, tid), &[comp, lib, blk]) in &acct {
        if pid != last_pid {
            flush_parts(&mut part_acct);
            let label = names.get(&pid).cloned().unwrap_or_default();
            println!();
            println!("run {pid}: {label}");
            println!(
                "  {:>4}{}  {:>12} {:>12} {:>12} {:>8}",
                "rank",
                if owners.is_some() { " part" } else { "" },
                "compute",
                "library",
                "blocked",
                "overlap"
            );
            last_pid = pid;
        }
        let busy = comp + lib + blk;
        let overlap = if busy > 0.0 { comp / busy } else { 0.0 };
        let part_col = match part_of(tid) {
            Some(p) => {
                let s = part_acct.entry(p).or_default();
                s[0] += comp;
                s[1] += lib;
                s[2] += blk;
                format!(" P{p:<3}")
            }
            None => String::new(),
        };
        println!(
            "  {:>4}{}  {:>12} {:>12} {:>12} {:>7.1}%",
            tid,
            part_col,
            fmt_us(comp),
            fmt_us(lib),
            fmt_us(blk),
            overlap * 100.0
        );
    }
    flush_parts(&mut part_acct);

    // Largest stall spans: rendezvous handshakes waiting for a progress
    // call, and receives matched against already-buffered messages. With a
    // partition mapping, each span is attributed by its peer: a cross-
    // partition stall is what the conservative engine's lookahead window
    // (null-message analogue) covers, an intra-partition one is a genuine
    // progress stall partitioning cannot touch.
    for (cat_name, title) in [
        (
            "rdv_stall",
            "top rendezvous stalls (RTS waiting for a progress call)",
        ),
        (
            "unexpected",
            "top unexpected-message waits (sender ahead of receiver)",
        ),
    ] {
        let mut stalls: Vec<&Ev> = events
            .iter()
            .filter(|e| e.ph == "X" && e.name == cat_name)
            .collect();
        // total_cmp: a hand-edited trace with a NaN duration must not
        // panic the analyzer (NaNs sort last).
        stalls.sort_by(|a, b| b.dur.total_cmp(&a.dur));
        println!();
        if stalls.is_empty() {
            println!("{title}: none");
            continue;
        }
        let total: f64 = stalls.iter().map(|e| e.dur).sum();
        println!("{title}: {} spans, {} total", stalls.len(), fmt_us(total));
        if owners.is_some() {
            let mut cross = (0usize, 0.0f64);
            let mut local = (0usize, 0.0f64);
            for e in &stalls {
                match (part_of(e.tid), e.src.and_then(part_of)) {
                    (Some(a), Some(b)) if a != b => {
                        cross.0 += 1;
                        cross.1 += e.dur;
                    }
                    _ => {
                        local.0 += 1;
                        local.1 += e.dur;
                    }
                }
            }
            println!(
                "  partition split: {} cross-partition spans, {} (lookahead-window bound); \
                 {} intra-partition spans, {} (genuine stalls)",
                cross.0,
                fmt_us(cross.1),
                local.0,
                fmt_us(local.1)
            );
        }
        for e in stalls.iter().take(5) {
            let kind = match (owners.is_some(), part_of(e.tid), e.src.and_then(part_of)) {
                (true, Some(a), Some(b)) if a != b => "  x-part",
                (true, _, _) => "  local",
                _ => "",
            };
            println!(
                "  run {} rank {:>3}  at {:>12}  for {:>10}{}",
                e.pid,
                e.tid,
                fmt_us(e.ts),
                fmt_us(e.dur),
                kind
            );
        }
    }

    // Tuner decision audit log.
    println!();
    match doc.get("adclAudit").and_then(|v| v.as_arr()) {
        None => println!("no adclAudit section"),
        Some([]) => println!("adcl audit: no decisions recorded"),
        Some(audit) => {
            println!("adcl audit: {} decision(s)", audit.len());
            for d in audit {
                println!(
                    "  [{}] {} -> {} (iter {}, margin {:+.1}%, strategy {}, filter {})",
                    field_str(d, "label"),
                    field_str(d, "op"),
                    field_str(d, "winner_name"),
                    field_f64(d, "decided_at_iter") as u64,
                    field_f64(d, "margin") * 100.0,
                    field_str(d, "strategy"),
                    field_str(d, "filter"),
                );
                if let Some(cands) = d.get("candidates").and_then(|v| v.as_arr()) {
                    for c in cands {
                        let score = c.get("score").and_then(|v| v.as_f64());
                        let rendered = match score {
                            Some(s) => format!("{:.3} ms", s * 1e3),
                            None => "unmeasured".to_string(),
                        };
                        println!(
                            "      {:<24} {:>2}/{:<2} samples kept  score {}",
                            field_str(c, "name"),
                            field_f64(c, "kept") as u64,
                            field_f64(c, "samples") as u64,
                            rendered,
                        );
                    }
                }
            }
        }
    }

    // Guideline cross-check flags: decisions whose committed winner a
    // clean fixed-schedule probe proved dominated (written by the exporter
    // when NBC_GUIDELINES is quick/full).
    println!();
    match doc.get("guidelineFlags").and_then(|v| v.as_arr()) {
        None => println!("no guidelineFlags section"),
        Some([]) => println!("guideline flags: none (no dominated winners)"),
        Some(flags) => {
            println!("guideline flags: {} dominated decision(s)", flags.len());
            for f in flags {
                println!(
                    "  [{}] winner {} left {:+.1}% on the table vs {}",
                    field_str(f, "label"),
                    field_str(f, "winner"),
                    field_f64(f, "advantage") * 100.0,
                    field_str(f, "best"),
                );
            }
        }
    }
}
