//! Fig. 2 — Ialltoall verification runs.
//!
//! Paper setup: 128 KiB message length per process pair, 50 s compute,
//! 32/128 processes on whale and 32/128/256 on crill; each implementation
//! run with the selection logic bypassed, then ADCL with brute force and
//! the attribute heuristic, for several progress-call counts.
//!
//! Expected shape: ADCL (both logics) lands on (or within a few percent
//! of) the fastest fixed implementation; its total is slightly above the
//! winner's because of the learning phase.

use bench::{banner, base_spec, verification_table, Args};
use netmodel::Platform;
use simcore::SimTime;

fn main() {
    let args = Args::parse();
    banner(
        "Fig. 2",
        "Ialltoall verification runs (128 KiB, per-impl vs ADCL)",
    );
    let whale_procs = args.pick(vec![16, 32], vec![32, 128]);
    let crill_procs = args.pick(vec![16, 32], vec![32, 128, 256]);
    let compute = args.pick(SimTime::from_millis(300), SimTime::from_secs(50));
    let iters = args.pick(30, 1000);

    for (platform, procs) in [
        (Platform::whale(), whale_procs),
        (Platform::crill(), crill_procs),
    ] {
        for &p in &procs {
            for num_progress in [5usize, 10] {
                let mut spec = base_spec(platform.clone(), p, 128 * 1024);
                spec.compute_total = compute;
                spec.iters = iters;
                spec.num_progress = num_progress;
                verification_table(
                    &spec,
                    &format!("{} p={p} progress={num_progress}", platform.name),
                );
            }
        }
    }
    bench::write_trace_if_requested();
}
