//! Fig. 5 — Influence of the number of processes.
//!
//! Paper setup: Ialltoall on whale, 1 KiB per process pair, 10 s compute,
//! 100 progress calls, with 32 vs 128 processes.
//!
//! Expected shape: the ranking flips with scale — the dissemination
//! algorithm does well at the smaller process count and poorly at the
//! larger one, while linear/pairwise behave the other way around (their
//! aggregate Bruck volume grows as (p/2)·log₂ p while per-message
//! overheads amortize).

use bench::{banner, base_spec, fmt_secs, Args, Table};
use netmodel::Platform;
use simcore::SimTime;

fn main() {
    let args = Args::parse();
    banner("Fig. 5", "Ialltoall on whale, 1 KiB: 32 vs 128 processes");
    let (p_small, p_large) = args.pick((16, 64), (32, 128));
    let iters = args.pick(40, 10_000);

    let mut small = base_spec(Platform::whale(), p_small, 1024);
    small.iters = iters;
    small.num_progress = 100;
    small.compute_total = args.pick(SimTime::from_millis(400), SimTime::from_secs(10));
    let mut large = small.clone();
    large.nprocs = p_large;

    println!();
    println!("1 KiB per pair, 100 progress calls, {iters} iterations");
    let s_rows = small.run_all_fixed();
    let l_rows = large.run_all_fixed();
    let mut t = Table::new(&[
        "implementation",
        &format!("p={p_small}"),
        &format!("p={p_large}"),
    ]);
    for (name, st) in &s_rows {
        let lt = l_rows.iter().find(|(n, _)| n == name).unwrap().1;
        t.row(vec![name.clone(), fmt_secs(*st), fmt_secs(lt)]);
    }
    t.print();

    let best = |rows: &[(String, f64)]| {
        rows.iter()
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap()
            .0
            .clone()
    };
    println!();
    println!(
        "best at p={p_small}: {}   best at p={p_large}: {}",
        best(&s_rows),
        best(&l_rows)
    );
    println!();
    println!("paper: dissemination good at 32 procs, poor at 128; linear/pairwise");
    println!("poor at 32, very good at 128 on this platform.");
    bench::write_trace_if_requested();
}
