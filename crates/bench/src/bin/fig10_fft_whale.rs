//! Fig. 10 — 3-D FFT: LibNBC vs ADCL vs blocking MPI on whale
//! (160 and 358 processes in the paper).
//!
//! Expected shape: ADCL beats LibNBC in most cases; in *some* scenarios
//! the blocking `MPI_Alltoall` version outperforms every non-blocking
//! variant (the motivation for the extended function-set of Fig. 11).

use autonbc::prelude::*;
use bench::{banner, fft_table, Args};

fn main() {
    let args = Args::parse();
    banner(
        "Fig. 10",
        "3-D FFT on whale: LibNBC vs ADCL vs blocking MPI_Alltoall",
    );
    // Below ~64 processes the linear algorithm is simply optimal and
    // there is nothing for the tuner to win; use the contended regime.
    let procs = args.pick(vec![64usize, 96], vec![160usize, 358]);
    let cfg = FftKernelConfig {
        n: args.pick(256, 256),
        planes_per_rank: 8,
        iters: args.pick(40, 350),
        tile: 4,
        progress_per_tile: 2,
        reps: 3,
        placement: Placement::Block,
    };
    let platform = Platform::whale();
    let modes = [
        FftMode::LibNbc,
        FftMode::BlockingMpi,
        FftMode::Adcl(bench::tuned_logic()),
    ];
    for p in procs {
        let results = fft_table(&platform, p, &cfg, &modes);
        let blocking_wins = FftPattern::all()
            .into_iter()
            .filter(|pattern| {
                let t = |pred: fn(&FftMode) -> bool| {
                    results
                        .iter()
                        .find(|(pt, m, _)| pt == pattern && pred(m))
                        .unwrap()
                        .2
                        .total_time
                };
                let bl = t(|m| matches!(m, FftMode::BlockingMpi));
                let nb = t(|m| matches!(m, FftMode::LibNbc));
                let ad = t(|m| matches!(m, FftMode::Adcl(_)));
                bl < nb && bl < ad
            })
            .count();
        println!("blocking MPI_Alltoall fastest in {blocking_wins}/4 patterns at p={p}");
    }
    println!();
    println!("paper: ADCL outperforms LibNBC in the vast majority of cases, but in");
    println!("some scenarios the blocking MPI_Alltoall beats all non-blocking ones.");
    bench::write_trace_if_requested();
}
