//! Fig. 9 — 3-D FFT: LibNBC vs ADCL on crill (160 and 500 processes).
//!
//! Expected shape: ADCL matches or beats the LibNBC version (whose only
//! all-to-all is the linear algorithm) on most pattern/process-count
//! combinations; where LibNBC "wins" the gap is the ADCL learning phase.

use autonbc::prelude::*;
use bench::{banner, fft_table, Args};

fn main() {
    let args = Args::parse();
    banner("Fig. 9", "3-D FFT on crill: LibNBC vs ADCL, four patterns");
    // Below ~64 processes the linear algorithm is simply optimal and
    // there is nothing for the tuner to win; use the contended regime.
    let procs = args.pick(vec![64usize, 96], vec![160usize, 500]);
    let cfg = FftKernelConfig {
        n: args.pick(256, 256),
        planes_per_rank: 8,
        iters: args.pick(40, 350),
        tile: 4,
        progress_per_tile: 2,
        reps: 3,
        placement: Placement::Block,
    };
    let platform = Platform::crill();
    let modes = [FftMode::LibNbc, FftMode::Adcl(bench::tuned_logic())];
    for p in procs {
        let results = fft_table(&platform, p, &cfg, &modes);
        let mut adcl_wins = 0;
        let mut total = 0;
        for pattern in FftPattern::all() {
            let nbc = results
                .iter()
                .find(|(pt, m, _)| *pt == pattern && matches!(m, FftMode::LibNbc))
                .unwrap();
            let adcl_r = results
                .iter()
                .find(|(pt, m, _)| *pt == pattern && matches!(m, FftMode::Adcl(_)))
                .unwrap();
            total += 1;
            if adcl_r.2.total_time <= nbc.2.total_time {
                adcl_wins += 1;
            }
        }
        println!("ADCL faster or equal in {adcl_wins}/{total} patterns at p={p}");
    }
    println!();
    println!("paper: ADCL reduced execution time vs LibNBC in 74% of 393 tests;");
    println!("LibNBC only supports the linear algorithm by default.");
    bench::write_trace_if_requested();
}
