//! Fig. 12 — 3-D FFT on the BlueGene/P with 1024 processes: the modified
//! (extended) ADCL function-set vs blocking MPI.
//!
//! Expected shape: on this platform the blocking version is unusually
//! competitive (slow cores make progress overhead expensive and the torus
//! handles the linear exchange well), and the ADCL-selected winner tracks
//! the better of the two worlds once the learning phase is excluded.

use autonbc::prelude::*;
use bench::{banner, fmt_secs, Args, Table};
use fft3d::patterns::run_fft_kernel;

fn main() {
    let args = Args::parse();
    banner(
        "Fig. 12",
        "3-D FFT on BlueGene/P: extended ADCL function-set vs MPI",
    );
    let p = args.pick(128, 1024);
    let cfg = FftKernelConfig {
        n: args.pick(128, 256),
        planes_per_rank: 4,
        iters: args.pick(40, 350),
        tile: 2,
        progress_per_tile: 2,
        reps: 3,
        placement: Placement::Block,
    };
    let platform = Platform::bluegene_p();

    println!();
    println!("bluegene-p, {p} processes, {} iterations", cfg.iters);
    let mut t = Table::new(&[
        "pattern",
        "mpi-blocking",
        "adcl-ext total",
        "adcl-ext steady",
        "winner",
    ]);
    for pattern in FftPattern::all() {
        let mpi = run_fft_kernel(
            &platform,
            p,
            &cfg,
            pattern,
            FftMode::BlockingMpi,
            NoiseConfig::light(1024),
        );
        let ext = run_fft_kernel(
            &platform,
            p,
            &cfg,
            pattern,
            FftMode::AdclExtended(bench::tuned_logic()),
            NoiseConfig::light(1024),
        );
        let learn = ext.converged_at.unwrap_or(0);
        let steady_rate = if cfg.iters > learn {
            ext.post_learning_time / (cfg.iters - learn) as f64
        } else {
            f64::NAN
        };
        t.row(vec![
            pattern.name().into(),
            fmt_secs(mpi.total_time),
            fmt_secs(ext.total_time),
            format!("{}/iter", fmt_secs(steady_rate)),
            ext.winner.unwrap_or_else(|| "?".into()),
        ]);
    }
    t.print();
    println!();
    println!("paper: at 1024 processes on the BlueGene/P the blocking MPI_Alltoall");
    println!("outperformed all non-blocking versions in several patterns; the");
    println!("extended function-set lets ADCL make that call itself.");
    bench::write_trace_if_requested();
}
