//! Ablation — selection-logic cost/quality trade-off on the 21-function
//! Ibcast set.
//!
//! Compares brute force, the attribute heuristic and the 2^k factorial
//! design on the same scenario: how many learning iterations each needs,
//! which implementation it picks, and how far that pick is from the
//! oracle best.

use autonbc::driver::{CollectiveOp, MicrobenchSpec};
use autonbc::prelude::*;
use bench::{banner, fmt_secs, Args, Table};

fn main() {
    let args = Args::parse();
    banner(
        "Ablation",
        "selection logics on Ibcast (21 implementations): cost vs quality",
    );
    let p = args.pick(16, 32);
    let spec = MicrobenchSpec {
        platform: Platform::whale(),
        nprocs: p,
        op: CollectiveOp::Ibcast,
        msg_bytes: 2 * 1024 * 1024,
        iters: args.pick(80, 400),
        compute_total: args.pick(SimTime::from_millis(800), SimTime::from_secs(20)),
        num_progress: 5,
        noise: NoiseConfig::light(21),
        reps: 3,
        placement: Placement::Block,
        imbalance: Imbalance::None,
    };

    println!();
    println!(
        "whale, {p} processes, 2 MiB broadcast, {} iterations",
        spec.iters
    );
    let rows = spec.run_all_fixed();
    let best = rows.iter().map(|(_, t)| *t).fold(f64::INFINITY, f64::min);
    let best_name = rows
        .iter()
        .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
        .unwrap()
        .0
        .clone();
    println!("oracle best: {best_name} at {}", fmt_secs(best));

    let mut t = Table::new(&[
        "logic",
        "learning iters",
        "winner",
        "winner vs oracle",
        "run total",
    ]);
    for (name, logic) in [
        ("brute force", SelectionLogic::BruteForce),
        ("racing (block 2)", SelectionLogic::Racing(2)),
        ("attribute heuristic", SelectionLogic::AttributeHeuristic),
        ("2^k factorial", SelectionLogic::TwoKFactorial),
    ] {
        let out = spec.run(logic);
        let winner = out.winner.clone().unwrap_or_else(|| "?".into());
        let wt = rows
            .iter()
            .find(|(n, _)| *n == winner)
            .map(|(_, t)| *t)
            .unwrap_or(f64::NAN);
        t.row(vec![
            name.into(),
            out.converged_at
                .map(|c| c.to_string())
                .unwrap_or_else(|| "-".into()),
            winner,
            format!("{:+.1}%", (wt / best - 1.0) * 100.0),
            fmt_secs(out.total),
        ]);
    }
    println!();
    t.print();
    println!();
    println!("expected: brute force needs 21 x reps learning iterations and finds the");
    println!("best; racing eliminates dominated trees block by block and converges in");
    println!("a fraction of that; the heuristic needs ~(7+3) x reps and is usually");
    println!("within a few percent; the factorial design needs 4 x reps and screens");
    println!("coarsely.");
    bench::write_trace_if_requested();
}
