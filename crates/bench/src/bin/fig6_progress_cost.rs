//! Fig. 6 — Too many progress calls reduce performance.
//!
//! Paper setup: Ibcast on whale, 32 processes, 1 KiB message, 50 s
//! compute; execution time of the micro-benchmark as the number of
//! progress calls per iteration increases.
//!
//! Expected shape: the loop time is flat (fully overlapped) for small
//! progress-call counts, then *rises* as each additional call adds
//! progress-engine overhead without improving overlap.

use autonbc::driver::CollectiveOp;
use autonbc::prelude::*;
use bench::{banner, base_spec, fmt_secs, Args, Table};

fn main() {
    let args = Args::parse();
    banner(
        "Fig. 6",
        "Ibcast on whale: execution time vs progress calls",
    );
    let p = args.pick(16, 32);
    let iters = args.pick(200, 10_000);

    let mut spec = base_spec(Platform::whale(), p, 1024);
    spec.op = CollectiveOp::Ibcast;
    spec.iters = iters;
    spec.compute_total = args.pick(SimTime::from_secs(1), SimTime::from_secs(50));
    // Fix one representative implementation (binomial, 32 KiB segments) so
    // only the progress-call count varies.
    let fnset = CollectiveOp::Ibcast.fnset(spec.coll_spec());
    let idx = fnset.index_of("binomial-seg32k").expect("known function");

    println!();
    println!(
        "{} processes, 1 KiB message, {} compute total, binomial-seg32k",
        p, spec.compute_total
    );
    let mut t = Table::new(&["progress calls", "loop time", "overhead vs floor"]);
    let floor = spec.compute_total.as_secs_f64();
    for num_progress in [1usize, 5, 10, 50, 100, 500, 1000] {
        let mut s = spec.clone();
        s.num_progress = num_progress;
        let out = s.run(SelectionLogic::Fixed(idx));
        t.row(vec![
            num_progress.to_string(),
            fmt_secs(out.total),
            format!("{:+.2}%", (out.total / floor - 1.0) * 100.0),
        ]);
    }
    t.print();
    println!();
    println!("paper: increasing the number of progress calls eventually increases");
    println!("the execution time — each call costs CPU inside the progress engine.");
    if simcore::trace::enabled() {
        // Tracing-only demonstration run (prints nothing, so untraced
        // stdout is unchanged): a 256 KiB Ibcast whose 32 KiB segments go
        // rendezvous on whale's inter-node transport, starved down to a
        // single progress call per iteration. Its timeline shows the
        // rendezvous handshake stalls that make progress calls matter —
        // the mechanism behind this figure's curve.
        let mut s = base_spec(Platform::whale(), p, 256 * 1024);
        s.op = CollectiveOp::Ibcast;
        s.iters = 10;
        s.compute_total = SimTime::from_millis(10);
        s.num_progress = 1;
        let demo_fnset = CollectiveOp::Ibcast.fnset(s.coll_spec());
        let demo_idx = demo_fnset
            .index_of("binomial-seg32k")
            .expect("known function");
        let _ = s.run(SelectionLogic::Fixed(demo_idx));
    }
    bench::write_trace_if_requested();
}
