//! §IV-A summary statistics — the verification-run sweep.
//!
//! Paper result: over 324 verification runs, the ADCL brute-force search
//! made the correct decision (an implementation within 5% of the best) in
//! 90% of the cases, the attribute-based heuristic in 92%.
//!
//! This binary sweeps platforms × process counts × message lengths ×
//! progress-call counts for both Ialltoall and Ibcast, judges every ADCL
//! decision against the fixed-implementation oracle, and prints the
//! correct-decision rates. Scenarios are independent simulations and fan
//! out over the sweep engine (`--jobs N`); output is identical for every
//! worker count.

use autonbc::driver::{CollectiveOp, MicrobenchSpec};
use autonbc::prelude::*;
use bench::{banner, Args, Table};

struct Sweep {
    total: usize,
    correct: usize,
}

impl Sweep {
    fn rate(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.correct as f64 / self.total as f64 * 100.0
        }
    }
}

/// One sweep point, fully described so scenarios can run on any worker.
struct Scenario {
    label: String,
    spec: MicrobenchSpec,
}

/// Everything the summary needs from one executed scenario.
struct Outcome {
    best_name: String,
    /// Per selection logic: (winner label, correct decision?).
    decisions: Vec<(String, bool)>,
}

/// Tuned logic (brute force, or racing under `NBC_RACING=on`) plus the
/// attribute heuristic.
fn logics() -> [SelectionLogic; 2] {
    [bench::tuned_logic(), SelectionLogic::AttributeHeuristic]
}

fn scenarios(args: &Args) -> Vec<Scenario> {
    let procs = args.pick3(vec![8usize], vec![8usize, 16], vec![32usize, 128]);
    let iters = args.pick3(25, 40, 200);
    let platforms = args.pick3(
        vec!["whale"],
        vec!["whale", "crill", "whale-tcp"],
        vec!["whale", "crill", "whale-tcp"],
    );
    let ops = args.pick3(
        vec![
            (CollectiveOp::Ialltoall, 1024usize),
            (CollectiveOp::Ialltoall, 128 * 1024),
        ],
        vec![
            (CollectiveOp::Ialltoall, 1024usize),
            (CollectiveOp::Ialltoall, 128 * 1024),
            (CollectiveOp::Ibcast, 2 * 1024 * 1024),
        ],
        vec![
            (CollectiveOp::Ialltoall, 1024usize),
            (CollectiveOp::Ialltoall, 128 * 1024),
            (CollectiveOp::Ibcast, 2 * 1024 * 1024),
        ],
    );

    let mut out = Vec::new();
    for platform_name in &platforms {
        let platform = Platform::by_name(platform_name).unwrap();
        for &p in &procs {
            for &(op, msg) in &ops {
                let slow = *platform_name == "whale-tcp";
                // Brute force over the 21-function Ibcast set needs
                // 21 x reps learning iterations plus slack.
                let op_iters = if op == CollectiveOp::Ibcast {
                    (21 * 4 + 20).max(iters)
                } else {
                    iters
                };
                out.push(Scenario {
                    label: format!("{} p={p} {} {}B", platform_name, op.name(), msg),
                    spec: MicrobenchSpec {
                        platform: platform.clone(),
                        nprocs: p,
                        op,
                        msg_bytes: msg,
                        iters: op_iters,
                        compute_total: if slow {
                            SimTime::from_secs(4)
                        } else {
                            SimTime::from_millis(2 * op_iters as u64)
                        },
                        num_progress: 5,
                        noise: NoiseConfig::light(p as u64 * 31 + msg as u64),
                        reps: 4,
                        placement: Placement::Block,
                        imbalance: Imbalance::None,
                    },
                });
            }
        }
    }
    out
}

fn run_scenario(sc: &Scenario) -> Outcome {
    let rows = sc.spec.run_all_fixed();
    let best = rows.iter().map(|(_, t)| *t).fold(f64::INFINITY, f64::min);
    let best_name = rows
        .iter()
        .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
        .unwrap()
        .0
        .clone();
    let decisions = logics()
        .iter()
        .map(|&logic| {
            let out = sc.spec.run(logic);
            let ok = out
                .winner
                .as_ref()
                .map(|w| {
                    let t = rows.iter().find(|(n, _)| n == w).unwrap().1;
                    t <= best * 1.05
                })
                .unwrap_or(false);
            (out.winner.unwrap_or_else(|| "?".into()), ok)
        })
        .collect();
    Outcome {
        best_name,
        decisions,
    }
}

fn main() {
    let args = Args::parse();
    banner(
        "Table (§IV-A)",
        "verification sweep: correct-decision rate per selection logic",
    );

    let scenarios = scenarios(&args);
    // Scenario-level fan-out: each worker runs whole scenarios serially
    // (the fixed runs inside share the scenario's schedule-cache entries),
    // and the merge is in input order, so the printed table is invariant
    // under --jobs.
    let outcomes = simcore::par::par_map(bench::jobs(), &scenarios, |_, sc| run_scenario(sc));

    let tuned_name = match bench::tuned_logic() {
        SelectionLogic::Racing(_) => "racing",
        _ => "brute force",
    };
    let mut sweeps = [
        (
            tuned_name,
            Sweep {
                total: 0,
                correct: 0,
            },
        ),
        (
            "attribute heuristic",
            Sweep {
                total: 0,
                correct: 0,
            },
        ),
    ];
    let mut detail = Table::new(&["scenario", "oracle best", tuned_name, "heuristic"]);
    for (sc, outcome) in scenarios.iter().zip(&outcomes) {
        let mut cells = vec![sc.label.clone(), outcome.best_name.clone()];
        for ((winner, ok), (_, sweep)) in outcome.decisions.iter().zip(sweeps.iter_mut()) {
            sweep.total += 1;
            if *ok {
                sweep.correct += 1;
            }
            cells.push(format!("{winner}{}", if *ok { " [ok]" } else { " [X]" }));
        }
        detail.row(cells);
    }

    println!();
    detail.print();
    println!();
    for (name, sweep) in &sweeps {
        println!(
            "{name:<22}: {}/{} correct decisions = {:.0}%  (paper: {}%)",
            sweep.correct,
            sweep.total,
            sweep.rate(),
            if *name == "attribute heuristic" {
                92
            } else {
                90
            }
        );
    }
    bench::write_trace_if_requested();
}
