//! §IV-B summary statistics — the application-kernel sweep.
//!
//! Paper result: out of 393 FFT tests, ADCL reduced execution time vs the
//! LibNBC version in 74% of the cases, with improvements up to 40%.
//!
//! This binary sweeps platforms × process counts × patterns × grid sizes,
//! compares ADCL against LibNBC on each, and prints the win rate and the
//! best observed improvement. Scenarios are independent simulations and
//! fan out over the sweep engine (`--jobs N`); output is identical for
//! every worker count.

use autonbc::prelude::*;
use bench::{banner, Args, Table};
use fft3d::patterns::run_fft_kernel;

/// One sweep point: platform × process count × grid × pattern.
struct Scenario {
    platform_name: &'static str,
    platform: Platform,
    procs: usize,
    n: usize,
    pattern: FftPattern,
    cfg: FftKernelConfig,
    iters: usize,
}

/// The comparison data extracted from one executed scenario.
struct Outcome {
    nbc_time: f64,
    adcl_time: f64,
    improvement: f64,
    steady_impr: f64,
    steady_win: bool,
}

fn run_scenario(sc: &Scenario) -> Outcome {
    let noise = NoiseConfig::light((sc.procs * sc.n) as u64);
    let nbc = run_fft_kernel(
        &sc.platform,
        sc.procs,
        &sc.cfg,
        sc.pattern,
        FftMode::LibNbc,
        noise,
    );
    let adcl_r = run_fft_kernel(
        &sc.platform,
        sc.procs,
        &sc.cfg,
        sc.pattern,
        FftMode::Adcl(bench::tuned_logic()),
        noise,
    );
    let improvement = 1.0 - adcl_r.total_time / nbc.total_time;
    // Steady-state comparison: learning phase excluded (for long-running
    // applications it is amortized).
    let learn = adcl_r.converged_at.unwrap_or(0);
    let steady_rate = if sc.iters > learn {
        adcl_r.post_learning_time / (sc.iters - learn) as f64
    } else {
        f64::INFINITY
    };
    let nbc_rate = nbc.total_time / sc.iters as f64;
    Outcome {
        nbc_time: nbc.total_time,
        adcl_time: adcl_r.total_time,
        improvement,
        steady_impr: 1.0 - steady_rate / nbc_rate,
        steady_win: steady_rate <= nbc_rate * 1.005,
    }
}

fn main() {
    let args = Args::parse();
    banner(
        "Table (§IV-B)",
        "FFT sweep: ADCL vs LibNBC win rate and improvement",
    );
    // Paper-scale process counts are where LibNBC's fixed linear algorithm
    // stops being optimal; below ~64 processes linear simply wins and the
    // sweep degenerates.
    let platforms = args.pick3(
        vec!["whale"],
        vec!["whale", "crill"],
        vec!["whale", "crill"],
    );
    let procs = args.pick3(vec![64usize], vec![64usize, 96], vec![160usize, 358, 500]);
    let grids = args.pick3(vec![192usize], vec![192usize, 256], vec![256usize, 320]);
    let iters = args.pick3(25, 40, 350);

    let mut scenarios = Vec::new();
    for platform_name in platforms {
        let platform = Platform::by_name(platform_name).unwrap();
        for &p in &procs {
            for &n in &grids {
                for pattern in FftPattern::all() {
                    scenarios.push(Scenario {
                        platform_name,
                        platform: platform.clone(),
                        procs: p,
                        n,
                        pattern,
                        cfg: FftKernelConfig {
                            n,
                            planes_per_rank: 8,
                            iters,
                            tile: 4,
                            progress_per_tile: 2,
                            reps: 3,
                            placement: Placement::Block,
                        },
                        iters,
                    });
                }
            }
        }
    }

    // Scenario-level fan-out; input-order merge keeps the table invariant
    // under --jobs.
    let outcomes = simcore::par::par_map(bench::jobs(), &scenarios, |_, sc| run_scenario(sc));

    let mut table = Table::new(&["scenario", "libnbc", "adcl", "improvement", "steady-state"]);
    let mut wins = 0usize;
    let mut on_par = 0usize;
    let mut steady_wins = 0usize;
    let mut total = 0usize;
    let mut best_improvement = 0.0f64;
    for (sc, o) in scenarios.iter().zip(&outcomes) {
        total += 1;
        if o.adcl_time <= o.nbc_time {
            wins += 1;
        } else if o.improvement > -0.02 {
            on_par += 1;
        }
        if o.steady_win {
            steady_wins += 1;
        }
        best_improvement = best_improvement.max(o.improvement);
        table.row(vec![
            format!(
                "{} p={} n={} {}",
                sc.platform_name,
                sc.procs,
                sc.n,
                sc.pattern.name()
            ),
            format!("{:.3} s", o.nbc_time),
            format!("{:.3} s", o.adcl_time),
            format!("{:+.1}%", o.improvement * 100.0),
            format!("{:+.1}%", o.steady_impr * 100.0),
        ]);
    }

    println!();
    table.print();
    println!();
    println!(
        "ADCL faster in {wins}/{total} tests = {:.0}%, on par (within 2%) in {on_par} \
         (paper: faster in 74% of 393, on par in most of the rest)",
        wins as f64 / total as f64 * 100.0
    );
    println!(
        "excluding the learning phase, ADCL matches or beats LibNBC in {steady_wins}/{total} \
         (the paper's long 350-iteration runs amortize learning)",
    );
    println!(
        "ADCL's losses are scenarios where LibNBC's linear algorithm is itself \
         optimal: the gap is the learning phase (amortized in longer runs)."
    );
    println!(
        "best improvement over LibNBC: {:.0}% (paper: up to 40%)",
        best_improvement * 100.0
    );
    bench::write_trace_if_requested();
}
