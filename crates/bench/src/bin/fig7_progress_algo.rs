//! Fig. 7 — The number of progress calls changes the optimal algorithm.
//!
//! Paper setup: Ialltoall on crill, 32 processes, 128 KiB per pair,
//! 100 s compute; best implementation as a function of the progress-call
//! count.
//!
//! Expected shape: with a single progress call the pairwise algorithm is
//! best (its rounds advance inside the wait; linear's concurrent streams
//! congest), while with more than one call the linear algorithm wins —
//! its single round overlaps fully once the rendezvous handshakes can be
//! served during compute.

use bench::{banner, base_spec, fmt_secs, Args, Table};
use netmodel::{Placement, Platform};
use simcore::SimTime;

fn main() {
    let args = Args::parse();
    banner(
        "Fig. 7",
        "Ialltoall on crill, 128 KiB: optimal algorithm vs progress calls",
    );
    let p = args.pick(32, 32);
    let iters = args.pick(20, 1000);

    let mut spec = base_spec(Platform::crill(), p, 128 * 1024);
    // 32 processes fit on a single 48-core crill node under block
    // placement; scatter them so the *network* algorithms are exercised,
    // as in the paper's study.
    spec.placement = Placement::RoundRobin;
    spec.iters = iters;
    spec.compute_total = args.pick(SimTime::from_secs(2), SimTime::from_secs(100));

    println!();
    println!(
        "{p} processes, 128 KiB per pair, {} compute",
        spec.compute_total
    );
    let mut t = Table::new(&["progress", "linear", "pairwise", "dissemination", "best"]);
    for num_progress in [1usize, 2, 5, 10, 50, 100] {
        let mut s = spec.clone();
        s.num_progress = num_progress;
        let rows = s.run_all_fixed();
        let best = rows
            .iter()
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap()
            .0
            .clone();
        t.row(vec![
            num_progress.to_string(),
            fmt_secs(rows[0].1),
            fmt_secs(rows[1].1),
            fmt_secs(rows[2].1),
            best,
        ]);
    }
    t.print();
    println!();
    println!("paper: pairwise delivers the best performance when only a single");
    println!("progress call can be inserted; linear does best with more than one.");
    bench::write_trace_if_requested();
}
