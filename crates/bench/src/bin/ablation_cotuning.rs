//! Ablation — co-tuning multiple operations under one timer (the paper's
//! §V future-work item, implemented here).
//!
//! An application section contains *two* collectives (an all-to-all and an
//! all-gather). A single ADCL timer brackets the section; the runtime
//! tunes one operation at a time while the other stays frozen at its
//! current best (coordinate descent). Compared against (a) the
//! LibNBC-style fixed baseline and (b) the per-operation oracle.

use autonbc::prelude::*;
use bench::{banner, fmt_secs, Args, Table};

struct Outcome {
    total: f64,
    winners: Vec<String>,
}

fn run(
    p: usize,
    iters: usize,
    msg: usize,
    logic_a: SelectionLogic,
    logic_b: SelectionLogic,
) -> Outcome {
    let mut world = World::new(Platform::whale(), p, Placement::Block, NoiseConfig::none());
    let mut session = TuningSession::new(p);
    let cfg = |logic| TunerConfig {
        logic,
        reps: 4,
        warmup: 1,
        filter: FilterKind::default(),
    };
    let op_a = session.add_op(
        "ialltoall",
        FunctionSet::ialltoall_default(CollSpec::new(p, msg)),
        cfg(logic_a),
    );
    let op_b = session.add_op(
        "iallgather",
        FunctionSet::iallgather_default(CollSpec::new(p, msg)),
        cfg(logic_b),
    );
    let timer = session.add_timer(vec![op_a, op_b]);
    let compute = SimTime::from_millis(2);
    let mk = || {
        let mut v = Vec::new();
        for _ in 0..iters {
            v.push(Instr::TimerStart(timer));
            v.push(Instr::Start { op: op_a, slot: 0 });
            v.push(Instr::Compute(compute));
            v.push(Instr::Progress { op: op_a });
            v.push(Instr::Wait { op: op_a, slot: 0 });
            v.push(Instr::Start { op: op_b, slot: 0 });
            v.push(Instr::Compute(compute));
            v.push(Instr::Progress { op: op_b });
            v.push(Instr::Wait { op: op_b, slot: 0 });
            v.push(Instr::TimerStop(timer));
        }
        v
    };
    let scripts = VecScript::boxed((0..p).map(|_| mk()).collect());
    let mut runner = Runner::new(session, scripts);
    world.run(&mut runner).expect("co-tuning deadlocked");
    let s = runner.session;
    let winners = [op_a, op_b]
        .iter()
        .map(|&op| {
            s.ops[op]
                .tuner
                .winner()
                .map(|w| s.ops[op].fnset.functions[w].name.clone())
                .unwrap_or_else(|| "?".into())
        })
        .collect();
    Outcome {
        total: s.timers[timer].total(),
        winners,
    }
}

fn main() {
    let args = Args::parse();
    banner(
        "Ablation",
        "co-tuning two collectives under one timer (coordinate descent)",
    );
    let p = args.pick(16, 64);
    let iters = args.pick(50, 300);
    let msg = 64 * 1024;

    println!();
    println!("section = Ialltoall + compute + Iallgather, {p} procs, 64 KiB, whale");
    let mut t = Table::new(&["configuration", "total", "alltoall impl", "allgather impl"]);

    // LibNBC-style: both fixed at linear.
    let fixed = run(
        p,
        iters,
        msg,
        SelectionLogic::Fixed(0),
        SelectionLogic::Fixed(0),
    );
    t.row(vec![
        "fixed linear+linear".into(),
        fmt_secs(fixed.total),
        "linear".into(),
        "linear".into(),
    ]);

    // Co-tuned: both brute force under the shared timer.
    let co = run(
        p,
        iters,
        msg,
        SelectionLogic::BruteForce,
        SelectionLogic::BruteForce,
    );
    t.row(vec![
        "co-tuned (ADCL)".into(),
        fmt_secs(co.total),
        co.winners[0].clone(),
        co.winners[1].clone(),
    ]);

    // Oracle: best fixed combination, found by exhaustive search.
    let mut best = (f64::INFINITY, 0usize, 0usize);
    for a in 0..3 {
        for b in 0..3 {
            let o = run(
                p,
                iters,
                msg,
                SelectionLogic::Fixed(a),
                SelectionLogic::Fixed(b),
            );
            if o.total < best.0 {
                best = (o.total, a, b);
            }
        }
    }
    let names = ["linear", "pairwise/ring", "dissemination/bruck"];
    t.row(vec![
        "oracle combination".into(),
        fmt_secs(best.0),
        names[best.1].into(),
        names[best.2].into(),
    ]);

    println!();
    t.print();
    println!();
    println!("expected: the co-tuned run converges near the oracle combination,");
    println!("paying one learning phase per operation (sequentially, so the");
    println!("measured section always has exactly one experimental variable).");
    bench::write_trace_if_requested();
}
