//! Ablation — does the statistical filter matter?
//!
//! The paper attributes ADCL's few wrong decisions to measurement
//! outliers from OS interference. This ablation injects heavy compute
//! noise and compares the correct-decision rate of the brute-force logic
//! with four measurement filters: none (plain mean), IQR rejection
//! (ADCL's default here), trimmed mean, and median.

use autonbc::adcl::filter::FilterKind;
use autonbc::adcl::microbench::MicroBenchScript;
use autonbc::adcl::runner::TuningSession;
use autonbc::adcl::runner::{Runner, Script};
use autonbc::adcl::tuner::TunerConfig;
use autonbc::driver::{CollectiveOp, MicrobenchSpec};
use autonbc::prelude::*;
use bench::{banner, Args, Table};

/// Run the spec with an explicit filter (the driver uses the default).
fn run_with_filter(spec: &MicrobenchSpec, filter: FilterKind) -> Option<String> {
    let fnset = spec.op.fnset(spec.coll_spec());
    let mut world = World::new(
        spec.platform.clone(),
        spec.nprocs,
        Placement::Block,
        spec.noise,
    );
    let mut session = TuningSession::new(spec.nprocs);
    let op = session.add_op(
        spec.op.name(),
        fnset,
        TunerConfig {
            logic: SelectionLogic::BruteForce,
            reps: spec.reps,
            warmup: 1,
            filter,
        },
    );
    let timer = session.add_timer(vec![op]);
    let scripts: Vec<Box<dyn Script>> =
        MicroBenchScript::per_rank(spec.bench_config(), op, timer, spec.nprocs);
    let mut runner = Runner::new(session, scripts);
    world.run(&mut runner).expect("deadlock");
    let s = runner.session;
    s.ops[op]
        .tuner
        .winner()
        .map(|w| s.ops[op].fnset.functions[w].name.clone())
}

fn main() {
    let args = Args::parse();
    banner(
        "Ablation",
        "statistical filtering under heavy OS noise (correct decisions / trials)",
    );
    let trials = args.pick(12, 32);
    let base = MicrobenchSpec {
        platform: Platform::whale(),
        nprocs: 16,
        op: CollectiveOp::Ialltoall,
        msg_bytes: 4096,
        iters: 60,
        compute_total: SimTime::from_millis(120),
        num_progress: 5,
        noise: NoiseConfig::none(),
        reps: 8,
        placement: Placement::Block,
        imbalance: Imbalance::None,
    };
    // Oracle from a noiseless run.
    let rows = base.run_all_fixed();
    let best = rows.iter().map(|(_, t)| *t).fold(f64::INFINITY, f64::min);
    let near_best: Vec<&String> = rows
        .iter()
        .filter(|(_, t)| *t <= best * 1.05)
        .map(|(n, _)| n)
        .collect();
    println!();
    println!(
        "oracle near-best implementations (within 5%): {:?}",
        near_best
    );

    let filters = [
        ("none (mean)", FilterKind::None),
        ("IQR 1.5 (default)", FilterKind::Iqr(1.5)),
        ("trimmed 20%", FilterKind::Trimmed(0.2)),
        ("median", FilterKind::Median),
    ];
    let mut t = Table::new(&["filter", "correct", "rate"]);
    for (name, filter) in filters {
        let mut correct = 0;
        for seed in 0..trials {
            let mut s = base.clone();
            // OS interference: *rare but large* spikes — a daemon waking
            // up on one core roughly doubles one iteration. Hitting a
            // function's few learning samples asymmetrically is what
            // flips decisions (frequent noise inflates everyone equally).
            s.noise = NoiseConfig {
                seed: seed as u64 * 7919 + 13,
                jitter: 0.005,
                spike_prob: 0.0015,
                spike_scale: 10.0,
            };
            if let Some(w) = run_with_filter(&s, filter) {
                if near_best.iter().any(|n| **n == w) {
                    correct += 1;
                }
            }
        }
        t.row(vec![
            name.into(),
            format!("{correct}/{trials}"),
            format!("{:.0}%", correct as f64 / trials as f64 * 100.0),
        ]);
    }
    println!();
    t.print();
    println!();
    println!("observed ordering: the plain mean is most fragile; IQR and trimmed");
    println!("means recover part of the losses (large spikes get rejected, mild");
    println!("ones survive the fences); the median is the most robust estimator");
    println!("under rare-but-large interference. In spike-free runs all filters");
    println!("agree, so robustness costs nothing (see the verification table).");
    bench::write_trace_if_requested();
}
