//! Ablation — deterministic fault injection and tuner robustness.
//!
//! The tuner's measurements are only as good as the transport underneath
//! them. This ablation runs the §IV-A micro-benchmark under the seeded
//! fault model (`NBC_FAULTS` / `--faults`) at increasing severity and
//! shows (a) that the injected drops, duplicates and jitter are absorbed
//! by the rendezvous retry engine — the tuned loop still completes and
//! commits a winner — and (b) that when a candidate genuinely cannot make
//! progress (total loss), the driver demotes it and degrades gracefully
//! instead of hanging.
//!
//! Every fault stream is seeded: rerunning this binary produces
//! byte-identical output.

use autonbc::driver::{CollectiveOp, MicrobenchSpec};
use autonbc::prelude::*;
use bench::{banner, fmt_secs, Args, Table};
use mpisim::fault::{self, FaultConfig};
use simcore::metrics;

fn spec(p: usize, iters: usize) -> MicrobenchSpec {
    MicrobenchSpec {
        platform: Platform::whale(),
        nprocs: p,
        op: CollectiveOp::Ialltoall,
        msg_bytes: 64 * 1024, // rendezvous on whale: exercises RTS/CTS retry
        iters,
        compute_total: SimTime::from_millis(4 * iters as u64),
        num_progress: 4,
        noise: NoiseConfig::none(),
        reps: 2,
        placement: Placement::Block,
        imbalance: Imbalance::None,
    }
}

fn fault_counts() -> (u64, u64, u64) {
    (
        metrics::counter("mpisim.fault.drops").get(),
        metrics::counter("mpisim.fault.retries").get(),
        metrics::counter("mpisim.fault.timeouts").get(),
    )
}

fn main() {
    let args = Args::parse();
    banner(
        "Ablation",
        "seeded fault injection vs tuner robustness (Ialltoall, 64 KiB)",
    );
    let p = args.pick(8, 16);
    let iters = args.pick(12, 48);

    println!();
    println!("{p} processes, brute-force tuning, seeded fault streams");
    let mut t = Table::new(&[
        "faults",
        "winner",
        "loop total",
        "drops",
        "retries",
        "timeouts",
    ]);
    let levels: [(&str, FaultConfig); 3] = [
        ("off", FaultConfig::off()),
        ("light:42", FaultConfig::light(42)),
        ("heavy:42", FaultConfig::heavy(42)),
    ];
    for (name, cfg) in levels {
        fault::set_override(Some(cfg));
        let before = fault_counts();
        let out = spec(p, iters).run(SelectionLogic::BruteForce);
        let after = fault_counts();
        t.row(vec![
            name.to_string(),
            out.winner.clone().unwrap_or_else(|| "-".into()),
            fmt_secs(out.total),
            format!("{}", after.0 - before.0),
            format!("{}", after.1 - before.1),
            format!("{}", after.2 - before.2),
        ]);
    }
    println!();
    t.print();

    // Total loss: no retry budget can save a candidate, so the driver must
    // demote its way through the set and report the degradation.
    println!();
    println!("total loss (drop=1.0, 2 retries): graceful degradation");
    let dead = FaultConfig {
        drop_prob: 1.0,
        retry_timeout: SimTime::from_micros(200),
        max_retries: 2,
        arm_timeouts: true,
        ..FaultConfig::off()
    };
    fault::set_override(Some(dead));
    let out = spec(p, args.pick(6, 12)).run(SelectionLogic::BruteForce);
    fault::clear_override();
    println!("  demoted: {}", out.demoted.join(", "));
    println!(
        "  winner:  {}",
        out.winner
            .as_deref()
            .unwrap_or("none (no usable candidate)")
    );
    println!();
    println!("expected: light faults leave the winner unchanged and cost only");
    println!("retries; heavy faults inflate the loop but the tuner still commits;");
    println!("total loss demotes every candidate instead of hanging the sweep.");
    bench::write_trace_if_requested();
}
