//! Ablation — the eager/rendezvous threshold and the progress problem.
//!
//! The paper's central difficulty is that large (rendezvous) messages do
//! not progress without entering the MPI library. This ablation sweeps
//! the eager threshold of the whale InfiniBand transport across the
//! benchmark's message size and shows overlap appearing/disappearing:
//! with the message below the threshold (eager) one progress call
//! suffices; above it (rendezvous) the loop time grows unless progress
//! calls are added.

use autonbc::driver::{CollectiveOp, MicrobenchSpec};
use autonbc::prelude::*;
use bench::{banner, fmt_secs, Args, Table};

fn main() {
    let args = Args::parse();
    banner(
        "Ablation",
        "eager/rendezvous threshold vs overlap (Ialltoall, 64 KiB messages)",
    );
    let p = args.pick(16, 32);
    let msg = 64 * 1024;
    let iters = args.pick(20, 200);

    println!();
    println!(
        "{p} processes, {} KiB per pair, linear algorithm",
        msg / 1024
    );
    let mut t = Table::new(&[
        "eager threshold",
        "1 progress call",
        "20 progress calls",
        "ratio",
    ]);
    for threshold in [4 * 1024usize, 16 * 1024, 64 * 1024, 256 * 1024] {
        let mut platform = Platform::whale();
        platform.inter.eager_threshold = threshold;
        let mk = |num_progress| MicrobenchSpec {
            platform: platform.clone(),
            nprocs: p,
            op: CollectiveOp::Ialltoall,
            msg_bytes: msg,
            iters,
            compute_total: SimTime::from_millis(4 * iters as u64),
            num_progress,
            noise: NoiseConfig::none(),
            reps: 1,
            placement: Placement::Block,
            imbalance: Imbalance::None,
        };
        let one = mk(1).run(SelectionLogic::Fixed(0)).total;
        let many = mk(20).run(SelectionLogic::Fixed(0)).total;
        t.row(vec![
            format!(
                "{} KiB ({})",
                threshold / 1024,
                if msg <= threshold {
                    "eager"
                } else {
                    "rendezvous"
                }
            ),
            fmt_secs(one),
            fmt_secs(many),
            format!("{:.2}x", one / many),
        ]);
    }
    println!();
    t.print();
    println!();
    println!("expected: below the threshold (eager) the single-progress-call run");
    println!("already overlaps; above it (rendezvous) it pays a large penalty that");
    println!("additional progress calls recover.");
    bench::write_trace_if_requested();
}
