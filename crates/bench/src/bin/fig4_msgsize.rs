//! Fig. 4 — Influence of the communication volume.
//!
//! Paper setup: Ialltoall on crill with 256 processes, 10 s compute,
//! 5 progress calls, at 1 KiB and at 128 KiB per process pair.
//!
//! Expected shape: the dissemination algorithm is the best choice at
//! 1 KiB (latency-bound, fewest messages) but the worst at 128 KiB
//! (it moves (p/2)·log₂(p)·s bytes); linear and pairwise are poor at 1 KiB
//! and strong at 128 KiB.

use bench::{banner, base_spec, fmt_secs, Args, Table};
use netmodel::Platform;
use simcore::SimTime;

fn main() {
    let args = Args::parse();
    banner("Fig. 4", "Ialltoall on crill: 1 KiB vs 128 KiB per pair");
    // The message-size crossover needs crill's real topology in play:
    // with 48 cores per node, 192+ processes span several nodes and the
    // dissemination algorithm's neighbour exchanges stay intra-node.
    let p = args.pick(192, 256);
    let iters = args.pick(12, 1000);

    let mut small = base_spec(Platform::crill(), p, 1024);
    small.iters = iters;
    small.compute_total = args.pick(SimTime::from_millis(120), SimTime::from_secs(10));
    let mut large = small.clone();
    large.msg_bytes = 128 * 1024;
    large.compute_total = args.pick(SimTime::from_millis(360), SimTime::from_secs(10));

    println!();
    println!("{p} processes, 5 progress calls, {iters} iterations");
    let s_rows = small.run_all_fixed();
    let l_rows = large.run_all_fixed();
    let mut t = Table::new(&["implementation", "1 KiB", "128 KiB"]);
    for (name, st) in &s_rows {
        let lt = l_rows.iter().find(|(n, _)| n == name).unwrap().1;
        t.row(vec![name.clone(), fmt_secs(*st), fmt_secs(lt)]);
    }
    t.print();

    let best = |rows: &[(String, f64)]| {
        rows.iter()
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap()
            .0
            .clone()
    };
    let worst = |rows: &[(String, f64)]| {
        rows.iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap()
            .0
            .clone()
    };
    println!();
    println!(
        "1 KiB : best = {:<14} worst = {}",
        best(&s_rows),
        worst(&s_rows)
    );
    println!(
        "128 KiB: best = {:<14} worst = {}",
        best(&l_rows),
        worst(&l_rows)
    );
    println!();
    println!("paper: dissemination best at 1 KiB and worst at 128 KiB; linear and");
    println!("pairwise poor at 1 KiB and strong at 128 KiB.");
    bench::write_trace_if_requested();
}
