//! Fig. 3 — Influence of the network characteristics.
//!
//! Paper setup: Ialltoall with 32 processes, 128 KiB per process pair,
//! 50 s compute, 5 progress calls; whale over InfiniBand vs whale over
//! Gigabit Ethernet.
//!
//! Expected shape: the linear algorithm is among the best on InfiniBand
//! but is the worst choice on whale-tcp (incast collapse), so the best
//! implementation differs between the two networks.

use bench::{banner, base_spec, fmt_secs, Args, Table};
use netmodel::Platform;
use simcore::SimTime;

fn main() {
    let args = Args::parse();
    banner(
        "Fig. 3",
        "Ialltoall: whale (InfiniBand) vs whale-tcp (GigE)",
    );
    let p = args.pick(16, 32);
    let iters = args.pick(20, 1000);

    let mut ib = base_spec(Platform::whale(), p, 128 * 1024);
    ib.iters = iters;
    ib.num_progress = 5;
    ib.compute_total = args.pick(SimTime::from_millis(400), SimTime::from_secs(50));
    let mut tcp = ib.clone();
    tcp.platform = Platform::whale_tcp();
    // TCP communication is an order of magnitude slower; scale compute so
    // overlap is at least possible (the paper's 50 s total plays the same
    // role at full scale).
    tcp.compute_total = args.pick(SimTime::from_secs(4), SimTime::from_secs(50));

    println!();
    println!(
        "{} processes, 128 KiB per pair, 5 progress calls, {} iterations",
        p, iters
    );
    let ib_rows = ib.run_all_fixed();
    let tcp_rows = tcp.run_all_fixed();
    let mut t = Table::new(&[
        "implementation",
        "whale (IB)",
        "whale-tcp",
        "IB rank",
        "TCP rank",
    ]);
    let rank_of = |rows: &[(String, f64)], name: &str| {
        let mut sorted: Vec<&(String, f64)> = rows.iter().collect();
        sorted.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
        sorted.iter().position(|(n, _)| n == name).unwrap() + 1
    };
    for (name, ib_t) in &ib_rows {
        let tcp_t = tcp_rows.iter().find(|(n, _)| n == name).unwrap().1;
        t.row(vec![
            name.clone(),
            fmt_secs(*ib_t),
            fmt_secs(tcp_t),
            format!("#{}", rank_of(&ib_rows, name)),
            format!("#{}", rank_of(&tcp_rows, name)),
        ]);
    }
    t.print();
    println!();
    let best = |rows: &[(String, f64)]| {
        rows.iter()
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap()
            .0
            .clone()
    };
    println!(
        "best implementation: IB = {}, TCP = {} (paper: linear good on IB, worst on TCP)",
        best(&ib_rows),
        best(&tcp_rows)
    );
    bench::write_trace_if_requested();
}
