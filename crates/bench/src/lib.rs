//! Shared infrastructure for the figure/table-regeneration binaries.
//!
//! Every figure and table of the paper's evaluation section has a binary
//! in `src/bin/` that regenerates it (see the experiment index in
//! `DESIGN.md`). Each binary prints the same rows/series the paper
//! reports. By default the experiments run at a scaled-down size that
//! completes in seconds; pass `--full` to use the paper-scale process
//! counts (slower, same shape).

use autonbc::driver::{CollectiveOp, MicrobenchSpec};
use autonbc::prelude::*;

/// Command-line options common to all figure binaries.
#[derive(Debug, Clone, Copy)]
pub struct Args {
    /// Run at paper-scale process counts instead of the quick defaults.
    pub full: bool,
}

impl Args {
    /// Parse from `std::env::args` (only `--full` and `--help` are
    /// recognized).
    pub fn parse() -> Args {
        let mut full = false;
        for a in std::env::args().skip(1) {
            match a.as_str() {
                "--full" => full = true,
                "--help" | "-h" => {
                    println!("usage: <figure-binary> [--full]");
                    println!("  --full   paper-scale process counts (slower)");
                    std::process::exit(0);
                }
                other => {
                    eprintln!("unknown argument {other}; supported: --full");
                    std::process::exit(2);
                }
            }
        }
        Args { full }
    }

    /// Pick between the scaled-down and the paper-scale value.
    pub fn pick<T>(&self, quick: T, full: T) -> T {
        if self.full {
            full
        } else {
            quick
        }
    }
}

/// Print a figure banner.
pub fn banner(fig: &str, caption: &str) {
    println!("==========================================================================");
    println!("{fig}: {caption}");
    println!("==========================================================================");
}

/// Simple fixed-width table printer.
pub struct Table {
    headers: Vec<String>,
    widths: Vec<usize>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create with column headers.
    pub fn new(headers: &[&str]) -> Table {
        Table {
            widths: headers.iter().map(|h| h.len()).collect(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header count).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len());
        for (w, c) in self.widths.iter_mut().zip(&cells) {
            *w = (*w).max(c.len());
        }
        self.rows.push(cells);
    }

    /// Print the table.
    pub fn print(&self) {
        let line: Vec<String> = self
            .headers
            .iter()
            .zip(&self.widths)
            .map(|(h, w)| format!("{h:>w$}", w = w))
            .collect();
        println!("{}", line.join("  "));
        println!("{}", "-".repeat(line.join("  ").len()));
        for r in &self.rows {
            let line: Vec<String> = r
                .iter()
                .zip(&self.widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect();
            println!("{}", line.join("  "));
        }
    }
}

/// Format seconds with engineering units.
pub fn fmt_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.2} ms", s * 1e3)
    } else {
        format!("{:.1} us", s * 1e6)
    }
}

/// A verification-run scenario: run every implementation fixed, then ADCL
/// with brute force and the attribute heuristic, and print the comparison
/// (the bar groups of Figs. 2–5).
pub fn verification_table(spec: &MicrobenchSpec, label: &str) {
    println!();
    println!(
        "[{label}] {} on {}: {} procs, {} B msg, {} iters, {} compute, {} progress calls",
        spec.op.name(),
        spec.platform.name,
        spec.nprocs,
        spec.msg_bytes,
        spec.iters,
        spec.compute_total,
        spec.num_progress,
    );
    let mut t = Table::new(&["implementation", "total", "vs best"]);
    let rows = spec.run_all_fixed();
    let best = rows.iter().map(|(_, x)| *x).fold(f64::INFINITY, f64::min);
    for (name, total) in &rows {
        t.row(vec![
            name.clone(),
            fmt_secs(*total),
            format!("{:+.1}%", (total / best - 1.0) * 100.0),
        ]);
    }
    for logic in [SelectionLogic::BruteForce, SelectionLogic::AttributeHeuristic] {
        let out = spec.run(logic);
        let name = match logic {
            SelectionLogic::BruteForce => "ADCL (brute force)",
            SelectionLogic::AttributeHeuristic => "ADCL (heuristic)",
            _ => unreachable!(),
        };
        t.row(vec![
            format!("{name} -> {}", out.winner.unwrap_or_else(|| "?".into())),
            fmt_secs(out.total),
            format!("{:+.1}%", (out.total / best - 1.0) * 100.0),
        ]);
    }
    t.print();
}

/// Default micro-benchmark spec used by several figures.
pub fn base_spec(platform: Platform, nprocs: usize, msg_bytes: usize) -> MicrobenchSpec {
    MicrobenchSpec {
        platform,
        nprocs,
        op: CollectiveOp::Ialltoall,
        msg_bytes,
        iters: 30,
        compute_total: SimTime::from_millis(60),
        num_progress: 5,
        noise: NoiseConfig::light(2015),
        reps: 4,
        placement: Placement::Block,
        imbalance: Imbalance::None,
    }
}

/// Run the 3-D FFT kernel for every pattern under the given modes and
/// print one row per pattern (the bar groups of Figs. 9–12). Returns
/// `(pattern, mode, result)` tuples for further aggregation.
pub fn fft_table(
    platform: &Platform,
    procs: usize,
    cfg: &FftKernelConfig,
    modes: &[FftMode],
) -> Vec<(FftPattern, FftMode, fft3d::patterns::FftRunResult)> {
    println!();
    println!(
        "{}: {} procs, {}x{}x{} grid, tile {}, {} iterations",
        platform.name,
        procs,
        cfg.n,
        cfg.n,
        procs * cfg.planes_per_rank,
        cfg.tile,
        cfg.iters
    );
    let mut headers: Vec<String> = vec!["pattern".into()];
    for m in modes {
        headers.push(m.name().to_string());
    }
    headers.push("adcl winner".into());
    let hdr_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut t = Table::new(&hdr_refs);
    let mut results = Vec::new();
    for pattern in FftPattern::all() {
        let mut cells = vec![pattern.name().to_string()];
        let mut winner = String::new();
        for &mode in modes {
            let r = fft3d::patterns::run_fft_kernel(
                platform,
                procs,
                cfg,
                pattern,
                mode,
                NoiseConfig::light(procs as u64),
            );
            cells.push(fmt_secs(r.total_time));
            if matches!(mode, FftMode::Adcl(_) | FftMode::AdclExtended(_)) {
                winner = r.winner.clone().unwrap_or_else(|| "?".into());
            }
            results.push((pattern, mode, r));
        }
        cells.push(winner);
        t.row(cells);
    }
    t.print();
    results
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_formats() {
        let mut t = Table::new(&["a", "bb"]);
        t.row(vec!["x".into(), "12345".into()]);
        t.print();
    }

    #[test]
    fn fmt_units() {
        assert_eq!(fmt_secs(2.5), "2.500 s");
        assert_eq!(fmt_secs(2.5e-3), "2.50 ms");
        assert_eq!(fmt_secs(2.5e-6), "2.5 us");
    }

    #[test]
    fn args_pick() {
        let a = Args { full: false };
        assert_eq!(a.pick(1, 2), 1);
        let a = Args { full: true };
        assert_eq!(a.pick(1, 2), 2);
    }
}
