//! Shared infrastructure for the figure/table-regeneration binaries.
//!
//! Every figure and table of the paper's evaluation section has a binary
//! in `src/bin/` that regenerates it (see the experiment index in
//! `DESIGN.md`). Each binary prints the same rows/series the paper
//! reports. By default the experiments run at a scaled-down size that
//! completes in seconds; pass `--full` to use the paper-scale process
//! counts (slower, same shape).

pub mod harness;
pub mod perf;

use autonbc::driver::{CollectiveOp, MicrobenchSpec};
use autonbc::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Worker-thread count for the current process, set once by
/// [`Args::parse`] and read by the sweep helpers ([`verification_table`],
/// [`fft_table`]). Defaults to 1 (serial) so library users who never parse
/// arguments get the serial baseline.
static JOBS: AtomicUsize = AtomicUsize::new(1);

/// Set the process-wide worker count used by the sweep helpers.
pub fn set_jobs(n: usize) {
    JOBS.store(n.max(1), Ordering::Relaxed);
}

/// The process-wide worker count (1 unless [`set_jobs`] raised it).
pub fn jobs() -> usize {
    JOBS.load(Ordering::Relaxed).max(1)
}

/// Command-line options common to all figure binaries.
#[derive(Debug, Clone, Copy)]
pub struct Args {
    /// Run at paper-scale process counts instead of the standard defaults.
    pub full: bool,
    /// Run a minimal smoke-sized sweep (used by `scripts/verify.sh` and
    /// the jobs-invariance tests; fast even at `--jobs 1`).
    pub quick: bool,
    /// Requested worker threads; 0 means auto (`NBC_JOBS` env var, then
    /// the host's available parallelism).
    pub jobs: usize,
    /// Dump a per-phase wall-time breakdown (schedule/world pre-build,
    /// timed simulation, result merge + report) next to the main report
    /// (`perf_trajectory` writes `BENCH_profile.json`).
    pub profile: bool,
}

impl Args {
    /// Parse from `std::env::args`. Recognized: `--full`, `--quick`,
    /// `--profile`, `--jobs N` (also `--jobs=N`; `0` = auto), `--trace-out FILE` (also
    /// `--trace-out=FILE`; enables tracing to that file, like
    /// `NBC_TRACE=FILE`), `--faults SPEC` (also `--faults=SPEC`; enables
    /// deterministic fault injection, like `NBC_FAULTS=SPEC`) and `--help`.
    /// Also publishes the resolved worker count via [`set_jobs`].
    pub fn parse() -> Args {
        let mut full = false;
        let mut quick = false;
        let mut profile = false;
        let mut jobs: Option<usize> = None;
        let mut it = std::env::args().skip(1);
        while let Some(a) = it.next() {
            match a.as_str() {
                "--full" => full = true,
                "--quick" => quick = true,
                "--profile" => profile = true,
                "--jobs" => {
                    let v = it.next().unwrap_or_else(|| {
                        eprintln!("--jobs needs a value (0 = auto)");
                        std::process::exit(2);
                    });
                    jobs = Some(parse_jobs(&v));
                }
                "--trace-out" => {
                    // `Args` is `Copy`, so the path rides on the global
                    // trace configuration rather than the struct.
                    let v = it.next().unwrap_or_else(|| {
                        eprintln!("--trace-out needs a file path");
                        std::process::exit(2);
                    });
                    simcore::trace::set_out_path(&v);
                }
                "--faults" => {
                    let v = it.next().unwrap_or_else(|| {
                        eprintln!(
                            "--faults needs a spec (off | light[:SEED] | heavy[:SEED] | k=v,...)"
                        );
                        std::process::exit(2);
                    });
                    set_faults(&v);
                }
                "--help" | "-h" => {
                    println!(
                        "usage: <figure-binary> [--full | --quick] [--jobs N] [--trace-out FILE]"
                    );
                    println!("  --full           paper-scale process counts (slower)");
                    println!("  --quick          minimal smoke-sized sweep (fast)");
                    println!("  --jobs N         worker threads for the sweep (0 = auto)");
                    println!("  --profile        write a per-phase wall-time breakdown");
                    println!("                   (build/sim/merge) next to the main report");
                    println!("  --trace-out FILE write a Chrome trace_event timeline plus the");
                    println!("                   tuner audit log (same as NBC_TRACE=FILE)");
                    println!("  --faults SPEC    deterministic fault injection (same as");
                    println!("                   NBC_FAULTS=SPEC): off, light[:SEED],");
                    println!(
                        "                   heavy[:SEED], or drop=P,dup=P,jitter=F,seed=N,..."
                    );
                    std::process::exit(0);
                }
                other => {
                    if let Some(v) = other.strip_prefix("--jobs=") {
                        jobs = Some(parse_jobs(v));
                    } else if let Some(v) = other.strip_prefix("--trace-out=") {
                        simcore::trace::set_out_path(v);
                    } else if let Some(v) = other.strip_prefix("--faults=") {
                        set_faults(v);
                    } else {
                        eprintln!(
                            "unknown argument {other}; supported: --full --quick --jobs N --profile --trace-out FILE --faults SPEC"
                        );
                        std::process::exit(2);
                    }
                }
            }
        }
        if full && quick {
            eprintln!("--full and --quick are mutually exclusive");
            std::process::exit(2);
        }
        let args = Args {
            full,
            quick,
            profile,
            jobs: jobs.unwrap_or(0),
        };
        set_jobs(args.effective_jobs());
        args
    }

    /// The resolved worker count (explicit `--jobs`, then `NBC_JOBS`,
    /// then the host's available parallelism).
    pub fn effective_jobs(&self) -> usize {
        simcore::par::effective_jobs(Some(self.jobs))
    }

    /// Pick between the scaled-down and the paper-scale value (`--quick`
    /// also selects the scaled-down one).
    pub fn pick<T>(&self, quick: T, full: T) -> T {
        if self.full {
            full
        } else {
            quick
        }
    }

    /// Three-way pick: the smoke-sized (`--quick`), standard, or
    /// paper-scale (`--full`) value.
    pub fn pick3<T>(&self, quick: T, standard: T, full: T) -> T {
        if self.full {
            full
        } else if self.quick {
            quick
        } else {
            standard
        }
    }
}

/// Write the collected timeline + tuner audit log to the `--trace-out` /
/// `NBC_TRACE` path, if one was configured. Every figure binary calls this
/// as its last statement; it is a no-op with tracing off and reports only
/// to stderr, so figure stdout stays byte-identical either way.
pub fn write_trace_if_requested() {
    autonbc::traceout::write_if_requested();
}

fn set_faults(spec: &str) {
    match mpisim::fault::FaultConfig::parse(spec) {
        Ok(cfg) => mpisim::fault::set_override(Some(cfg)),
        Err(e) => {
            eprintln!("bad --faults spec: {e}");
            std::process::exit(2);
        }
    }
}

fn parse_jobs(v: &str) -> usize {
    v.trim().parse().unwrap_or_else(|_| {
        eprintln!("--jobs expects a non-negative integer, got {v:?}");
        std::process::exit(2);
    })
}

/// Print a figure banner.
pub fn banner(fig: &str, caption: &str) {
    println!("==========================================================================");
    println!("{fig}: {caption}");
    println!("==========================================================================");
}

/// Simple fixed-width table printer.
pub struct Table {
    headers: Vec<String>,
    widths: Vec<usize>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create with column headers.
    pub fn new(headers: &[&str]) -> Table {
        Table {
            widths: headers.iter().map(|h| h.len()).collect(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header count).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len());
        for (w, c) in self.widths.iter_mut().zip(&cells) {
            *w = (*w).max(c.len());
        }
        self.rows.push(cells);
    }

    /// Print the table.
    pub fn print(&self) {
        let line: Vec<String> = self
            .headers
            .iter()
            .zip(&self.widths)
            .map(|(h, w)| format!("{h:>w$}", w = w))
            .collect();
        println!("{}", line.join("  "));
        println!("{}", "-".repeat(line.join("  ").len()));
        for r in &self.rows {
            let line: Vec<String> = r
                .iter()
                .zip(&self.widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect();
            println!("{}", line.join("  "));
        }
    }
}

/// Format seconds with engineering units.
pub fn fmt_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.2} ms", s * 1e3)
    } else {
        format!("{:.1} us", s * 1e6)
    }
}

/// A verification-run scenario: run every implementation fixed, then ADCL
/// with brute force and the attribute heuristic, and print the comparison
/// (the bar groups of Figs. 2–5).
pub fn verification_table(spec: &MicrobenchSpec, label: &str) {
    println!();
    println!(
        "[{label}] {} on {}: {} procs, {} B msg, {} iters, {} compute, {} progress calls",
        spec.op.name(),
        spec.platform.name,
        spec.nprocs,
        spec.msg_bytes,
        spec.iters,
        spec.compute_total,
        spec.num_progress,
    );
    let mut t = Table::new(&["implementation", "total", "vs best"]);
    let rows = spec.run_all_fixed_jobs(jobs());
    let best = rows.iter().map(|(_, x)| *x).fold(f64::INFINITY, f64::min);
    for (name, total) in &rows {
        t.row(vec![
            name.clone(),
            fmt_secs(*total),
            format!("{:+.1}%", (total / best - 1.0) * 100.0),
        ]);
    }
    let logics = [tuned_logic(), SelectionLogic::AttributeHeuristic];
    let outs = simcore::par::par_map(jobs(), &logics, |_, &logic| spec.run(logic));
    for (logic, out) in logics.iter().zip(outs) {
        let name = match logic {
            SelectionLogic::BruteForce => "ADCL (brute force)",
            SelectionLogic::Racing(_) => "ADCL (racing)",
            SelectionLogic::AttributeHeuristic => "ADCL (heuristic)",
            _ => unreachable!(),
        };
        t.row(vec![
            format!("{name} -> {}", out.winner.unwrap_or_else(|| "?".into())),
            fmt_secs(out.total),
            format!("{:+.1}%", (out.total / best - 1.0) * 100.0),
        ]);
    }
    t.print();
}

/// The tuned-selection logic the figure binaries run: brute force by
/// default (byte-identical to every committed `results/*.txt`), swapped
/// for racing elimination when the user opts in with `NBC_RACING=on`
/// (or `on:BLOCK`). `NBC_RACING=off`/unset both keep brute force here —
/// the flag's default only flips inside the `adcld` daemon, whose cold
/// path is what racing exists for.
pub fn tuned_logic() -> SelectionLogic {
    match adcl::strategy::racing_env() {
        adcl::strategy::RacingEnv::On(block) => SelectionLogic::Racing(block),
        _ => SelectionLogic::BruteForce,
    }
}

/// Default micro-benchmark spec used by several figures.
pub fn base_spec(platform: Platform, nprocs: usize, msg_bytes: usize) -> MicrobenchSpec {
    MicrobenchSpec {
        platform,
        nprocs,
        op: CollectiveOp::Ialltoall,
        msg_bytes,
        iters: 30,
        compute_total: SimTime::from_millis(60),
        num_progress: 5,
        noise: NoiseConfig::light(2015),
        reps: 4,
        placement: Placement::Block,
        imbalance: Imbalance::None,
    }
}

/// Run the 3-D FFT kernel for every pattern under the given modes and
/// print one row per pattern (the bar groups of Figs. 9–12). Returns
/// `(pattern, mode, result)` tuples for further aggregation.
pub fn fft_table(
    platform: &Platform,
    procs: usize,
    cfg: &FftKernelConfig,
    modes: &[FftMode],
) -> Vec<(FftPattern, FftMode, fft3d::patterns::FftRunResult)> {
    println!();
    println!(
        "{}: {} procs, {}x{}x{} grid, tile {}, {} iterations",
        platform.name,
        procs,
        cfg.n,
        cfg.n,
        procs * cfg.planes_per_rank,
        cfg.tile,
        cfg.iters
    );
    let mut headers: Vec<String> = vec!["pattern".into()];
    for m in modes {
        headers.push(m.name().to_string());
    }
    headers.push("adcl winner".into());
    let hdr_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut t = Table::new(&hdr_refs);
    // Every (pattern, mode) kernel run is an independent simulation: fan
    // them out across the sweep engine, then assemble rows in input order.
    let work: Vec<(FftPattern, FftMode)> = FftPattern::all()
        .into_iter()
        .flat_map(|p| modes.iter().map(move |&m| (p, m)))
        .collect();
    // Kernel runs are far above the pool-handoff floor at every figure
    // size, but routing through the costed map keeps tiny test-sized
    // configs on the serial path instead of paying a pointless handoff.
    let est = work
        .iter()
        .map(|&(p, _)| cfg.est_run_nanos(p, procs))
        .max()
        .unwrap_or(simcore::par::COST_UNKNOWN);
    let runs = simcore::par::par_map_costed(jobs(), &work, est, |_, &(pattern, mode)| {
        fft3d::patterns::run_fft_kernel(
            platform,
            procs,
            cfg,
            pattern,
            mode,
            NoiseConfig::light(procs as u64),
        )
    });
    let mut results = Vec::new();
    let mut it = work.iter().zip(runs);
    for pattern in FftPattern::all() {
        let mut cells = vec![pattern.name().to_string()];
        let mut winner = String::new();
        for _ in modes {
            let (&(_, mode), r) = it.next().expect("one run per (pattern, mode)");
            cells.push(fmt_secs(r.total_time));
            if matches!(mode, FftMode::Adcl(_) | FftMode::AdclExtended(_)) {
                winner = r.winner.clone().unwrap_or_else(|| "?".into());
            }
            results.push((pattern, mode, r));
        }
        cells.push(winner);
        t.row(cells);
    }
    t.print();
    results
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_formats() {
        let mut t = Table::new(&["a", "bb"]);
        t.row(vec!["x".into(), "12345".into()]);
        t.print();
    }

    #[test]
    fn fmt_units() {
        assert_eq!(fmt_secs(2.5), "2.500 s");
        assert_eq!(fmt_secs(2.5e-3), "2.50 ms");
        assert_eq!(fmt_secs(2.5e-6), "2.5 us");
    }

    #[test]
    fn args_pick() {
        let a = Args {
            full: false,
            quick: false,
            profile: false,
            jobs: 0,
        };
        assert_eq!(a.pick(1, 2), 1);
        assert_eq!(a.pick3(0, 1, 2), 1);
        let a = Args {
            full: true,
            quick: false,
            profile: false,
            jobs: 0,
        };
        assert_eq!(a.pick(1, 2), 2);
        assert_eq!(a.pick3(0, 1, 2), 2);
        let a = Args {
            full: false,
            quick: true,
            profile: false,
            jobs: 0,
        };
        assert_eq!(a.pick(1, 2), 1);
        assert_eq!(a.pick3(0, 1, 2), 0);
    }

    #[test]
    fn jobs_setting_floor_is_one() {
        set_jobs(0);
        assert_eq!(jobs(), 1);
        set_jobs(4);
        assert_eq!(jobs(), 4);
        set_jobs(1);
    }
}
