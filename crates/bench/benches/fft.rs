//! Criterion benchmarks for the numerical FFT library.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fft3d::complex::Complex64;
use fft3d::fft1d::fft;
use fft3d::multi::{fft_3d, Grid3};
use std::hint::black_box;

fn input(n: usize) -> Vec<Complex64> {
    (0..n)
        .map(|i| {
            let x = (i as f64 * 0.7).sin();
            Complex64::new(x, -x * 0.5)
        })
        .collect()
}

fn bench_fft1d(c: &mut Criterion) {
    let mut g = c.benchmark_group("fft1d");
    for n in [256usize, 4096, 65_536] {
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("radix2", n), &n, |b, &n| {
            let data = input(n);
            b.iter(|| {
                let mut d = data.clone();
                fft(&mut d);
                black_box(d[0])
            })
        });
    }
    // Non-power-of-two goes through Bluestein.
    for n in [1000usize, 4725] {
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("bluestein", n), &n, |b, &n| {
            let data = input(n);
            b.iter(|| {
                let mut d = data.clone();
                fft(&mut d);
                black_box(d[0])
            })
        });
    }
    g.finish();
}

fn bench_fft3d(c: &mut Criterion) {
    let mut g = c.benchmark_group("fft3d");
    g.sample_size(10);
    for (n, threads) in [(32usize, 1usize), (32, 4), (64, 1), (64, 4)] {
        g.bench_with_input(
            BenchmarkId::new(format!("n{n}"), format!("t{threads}")),
            &(n, threads),
            |b, &(n, threads)| {
                let grid = Grid3::from_fn(n, n, n, |x, y, z| {
                    Complex64::new((x + y) as f64, z as f64)
                });
                b.iter(|| {
                    let mut g2 = grid.clone();
                    fft_3d(&mut g2, threads);
                    black_box(g2.data[0])
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_fft1d, bench_fft3d);
criterion_main!(benches);
