//! Benchmarks for the numerical FFT library, on the in-tree
//! `bench::harness` (no external crates; run with `cargo bench`).

use bench::harness::Harness;
use fft3d::complex::Complex64;
use fft3d::fft1d::fft;
use fft3d::multi::{fft_3d, Grid3};
use std::hint::black_box;

fn input(n: usize) -> Vec<Complex64> {
    (0..n)
        .map(|i| {
            let x = (i as f64 * 0.7).sin();
            Complex64::new(x, -x * 0.5)
        })
        .collect()
}

fn bench_fft1d(h: &mut Harness) {
    let mut g = h.group("fft1d");
    for n in [256usize, 4096, 65_536] {
        let data = input(n);
        g.bench(&format!("radix2/{n}"), move || {
            let mut d = data.clone();
            fft(&mut d);
            black_box(d[0])
        });
    }
    // Non-power-of-two goes through Bluestein.
    for n in [1000usize, 4725] {
        let data = input(n);
        g.bench(&format!("bluestein/{n}"), move || {
            let mut d = data.clone();
            fft(&mut d);
            black_box(d[0])
        });
    }
}

fn bench_fft3d(h: &mut Harness) {
    let mut g = h.group("fft3d");
    g.sample_size(10);
    for (n, threads) in [(32usize, 1usize), (32, 4), (64, 1), (64, 4)] {
        let grid = Grid3::from_fn(n, n, n, |x, y, z| Complex64::new((x + y) as f64, z as f64));
        g.bench(&format!("n{n}/t{threads}"), move || {
            let mut g2 = grid.clone();
            fft_3d(&mut g2, threads);
            black_box(g2.data[0])
        });
    }
}

fn main() {
    let mut h = Harness::from_args();
    bench_fft1d(&mut h);
    bench_fft3d(&mut h);
}
