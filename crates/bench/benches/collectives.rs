//! Criterion benchmarks for schedule construction and simulated
//! collective execution across algorithms and scales.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nbc::alltoall::{build_alltoall, AlltoallAlgo};
use nbc::bcast::{build_bcast, BcastAlgo};
use nbc::schedule::CollSpec;
use std::hint::black_box;

use adcl::function::FunctionSet;
use adcl::microbench::{MicroBenchConfig, MicroBenchScript};
use adcl::runner::{Runner, Script, TuningSession};
use adcl::strategy::SelectionLogic;
use adcl::tuner::TunerConfig;
use mpisim::{NoiseConfig, World};
use netmodel::{Placement, Platform};
use simcore::SimTime;

fn bench_schedule_builders(c: &mut Criterion) {
    let mut g = c.benchmark_group("schedule_build");
    for p in [64usize, 1024] {
        let spec = CollSpec::new(p, 128 * 1024);
        g.bench_with_input(BenchmarkId::new("alltoall_all", p), &p, |b, _| {
            b.iter(|| {
                for algo in AlltoallAlgo::all() {
                    black_box(build_alltoall(algo, p / 2, &spec));
                }
            })
        });
        g.bench_with_input(BenchmarkId::new("bcast_binomial_seg32k", p), &p, |b, _| {
            let spec = CollSpec::new(p, 2 * 1024 * 1024);
            b.iter(|| black_box(build_bcast(BcastAlgo::Binomial, 32 * 1024, p / 2, &spec)))
        });
    }
    g.finish();
}

/// One full simulated micro-benchmark loop (the unit of every figure).
fn run_loop(platform: Platform, nprocs: usize, msg: usize, iters: usize) -> f64 {
    let mut world = World::new(platform, nprocs, Placement::Block, NoiseConfig::none());
    let mut session = TuningSession::new(nprocs);
    let fnset = FunctionSet::ialltoall_default(CollSpec::new(nprocs, msg));
    let op = session.add_op(
        "ialltoall",
        fnset,
        TunerConfig {
            logic: SelectionLogic::Fixed(0),
            reps: 1,
            warmup: 0,
            filter: Default::default(),
        },
    );
    let timer = session.add_timer(vec![op]);
    let cfg = MicroBenchConfig {
        iters,
        compute_total: SimTime::from_millis(iters as u64),
        num_progress: 5,
    };
    let scripts: Vec<Box<dyn Script>> = MicroBenchScript::per_rank(cfg, op, timer, nprocs);
    let mut runner = Runner::new(session, scripts);
    world.run(&mut runner).expect("no deadlock");
    runner.session.timers[timer].total()
}

fn bench_simulated_collectives(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulated_loop");
    g.sample_size(10);
    for (p, msg) in [(16usize, 1024usize), (64, 1024), (16, 128 * 1024)] {
        g.bench_with_input(
            BenchmarkId::new("whale_linear", format!("p{p}_m{msg}")),
            &(p, msg),
            |b, &(p, msg)| b.iter(|| black_box(run_loop(Platform::whale(), p, msg, 5))),
        );
    }
    g.finish();
}

criterion_group!(benches, bench_schedule_builders, bench_simulated_collectives);
criterion_main!(benches);
