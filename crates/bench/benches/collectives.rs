//! Benchmarks for schedule construction and simulated collective
//! execution across algorithms and scales, on the in-tree
//! `bench::harness` (no external crates; run with `cargo bench`).

use bench::harness::Harness;
use nbc::alltoall::{build_alltoall, AlltoallAlgo};
use nbc::bcast::{build_bcast, BcastAlgo};
use nbc::schedule::CollSpec;
use std::hint::black_box;

use adcl::function::FunctionSet;
use adcl::microbench::{MicroBenchConfig, MicroBenchScript};
use adcl::runner::{Runner, Script, TuningSession};
use adcl::strategy::SelectionLogic;
use adcl::tuner::TunerConfig;
use mpisim::{NoiseConfig, World};
use netmodel::{Placement, Platform};
use simcore::SimTime;

fn bench_schedule_builders(h: &mut Harness) {
    let mut g = h.group("schedule_build");
    for p in [64usize, 1024] {
        let spec = CollSpec::new(p, 128 * 1024);
        g.bench(&format!("alltoall_all/{p}"), move || {
            for algo in AlltoallAlgo::all() {
                black_box(build_alltoall(algo, p / 2, &spec));
            }
        });
        let bspec = CollSpec::new(p, 2 * 1024 * 1024);
        g.bench(&format!("bcast_binomial_seg32k/{p}"), move || {
            black_box(build_bcast(BcastAlgo::Binomial, 32 * 1024, p / 2, &bspec))
        });
    }
}

/// One full simulated micro-benchmark loop (the unit of every figure).
fn run_loop(platform: Platform, nprocs: usize, msg: usize, iters: usize) -> f64 {
    let mut world = World::new(platform, nprocs, Placement::Block, NoiseConfig::none());
    let mut session = TuningSession::new(nprocs);
    let fnset = FunctionSet::ialltoall_default(CollSpec::new(nprocs, msg));
    let op = session.add_op(
        "ialltoall",
        fnset,
        TunerConfig {
            logic: SelectionLogic::Fixed(0),
            reps: 1,
            warmup: 0,
            filter: Default::default(),
        },
    );
    let timer = session.add_timer(vec![op]);
    let cfg = MicroBenchConfig {
        iters,
        compute_total: SimTime::from_millis(iters as u64),
        num_progress: 5,
    };
    let scripts: Vec<Box<dyn Script>> = MicroBenchScript::per_rank(cfg, op, timer, nprocs);
    let mut runner = Runner::new(session, scripts);
    world.run(&mut runner).expect("no deadlock");
    runner.session.timers[timer].total()
}

fn bench_simulated_collectives(h: &mut Harness) {
    let mut g = h.group("simulated_loop");
    g.sample_size(10);
    for (p, msg) in [(16usize, 1024usize), (64, 1024), (16, 128 * 1024)] {
        g.bench(&format!("whale_linear/p{p}_m{msg}"), move || {
            black_box(run_loop(Platform::whale(), p, msg, 5))
        });
    }
}

fn main() {
    let mut h = Harness::from_args();
    bench_schedule_builders(&mut h);
    bench_simulated_collectives(&mut h);
}
