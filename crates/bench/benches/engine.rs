//! Benchmarks for the simulation substrate: event queue, contention
//! resources, and the point-to-point layer. Uses the in-tree
//! `bench::harness` (no external crates; run with `cargo bench`).

use bench::harness::Harness;
use mpisim::{NoiseConfig, RankBehavior, RankId, Step, Tag, World};
use netmodel::{Placement, Platform};
use simcore::{EventQueue, FifoResource, SimTime};
use std::hint::black_box;

fn bench_event_queue(h: &mut Harness) {
    let mut g = h.group("event_queue");
    for n in [1_000usize, 100_000] {
        g.bench(&format!("push_pop/{n}"), move || {
            let mut q = EventQueue::new();
            for i in 0..n as u64 {
                // Pseudo-random but monotone-safe times.
                q.push(SimTime::from_nanos(i ^ (((i << 7) % 1_000_000) + i)), i);
            }
            let mut acc = 0u64;
            while let Some((_, e)) = q.pop() {
                acc = acc.wrapping_add(e);
            }
            black_box(acc)
        });
    }
}

fn bench_fifo_resource(h: &mut Harness) {
    h.group("fifo_resource").bench("submit_100k", || {
        let mut r = FifoResource::new();
        let mut t = SimTime::ZERO;
        for i in 0..100_000u64 {
            t += SimTime::from_nanos(i % 97);
            black_box(r.submit(t, SimTime::from_nanos(50)));
        }
        r.next_free()
    });
}

/// A ring exchange driven end-to-end through the world.
struct Ring {
    bytes: usize,
    state: Vec<u8>,
    sends: Vec<Option<mpisim::SendHandle>>,
    recvs: Vec<Option<mpisim::RecvHandle>>,
}

impl RankBehavior for Ring {
    fn step(&mut self, w: &mut World, r: RankId) -> Step {
        let n = w.nranks();
        match self.state[r] {
            0 => {
                self.state[r] = 1;
                let now = w.rank_now(r);
                let s = w.isend(r, (r + 1) % n, Tag(0), self.bytes, now);
                let rv = w.irecv(r, (r + n - 1) % n, Tag(0), self.bytes, now);
                self.sends[r] = Some(s);
                self.recvs[r] = Some(rv);
                Step::Busy(SimTime::from_nanos(100))
            }
            _ => {
                let now = w.rank_now(r);
                w.poll(r, now);
                if w.send_done(self.sends[r].unwrap(), now)
                    && w.recv_done(self.recvs[r].unwrap(), now)
                {
                    Step::Done
                } else {
                    Step::Block
                }
            }
        }
    }
}

fn bench_p2p_ring(h: &mut Harness) {
    let mut g = h.group("p2p_ring");
    g.sample_size(20);
    for nranks in [16usize, 128] {
        g.bench(&format!("whale/{nranks}"), move || {
            let mut w = World::new(
                Platform::whale(),
                nranks,
                Placement::Block,
                NoiseConfig::none(),
            );
            let mut ring = Ring {
                bytes: 4096,
                state: vec![0; nranks],
                sends: vec![None; nranks],
                recvs: vec![None; nranks],
            };
            w.run(&mut ring).expect("ring completes")
        });
    }
}

fn main() {
    let mut h = Harness::from_args();
    bench_event_queue(&mut h);
    bench_fifo_resource(&mut h);
    bench_p2p_ring(&mut h);
}
