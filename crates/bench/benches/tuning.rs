//! Benchmarks of the paper's experiments themselves, at miniature
//! scale: each group corresponds to a figure and measures the
//! wall-clock cost of regenerating a single data point of it. Run the
//! `fig*` binaries for the full tables. Uses the in-tree
//! `bench::harness` (no external crates; run with `cargo bench`).

use autonbc::driver::{CollectiveOp, MicrobenchSpec};
use autonbc::prelude::*;
use bench::harness::Harness;
use fft3d::patterns::run_fft_kernel;
use std::hint::black_box;

fn mini_spec(platform: Platform, msg: usize) -> MicrobenchSpec {
    MicrobenchSpec {
        platform,
        nprocs: 8,
        op: CollectiveOp::Ialltoall,
        msg_bytes: msg,
        iters: 12,
        compute_total: SimTime::from_millis(12),
        num_progress: 5,
        noise: NoiseConfig::none(),
        reps: 3,
        placement: Placement::Block,
        imbalance: Imbalance::None,
    }
}

fn bench_fig2_verification_point(h: &mut Harness) {
    let mut g = h.group("fig2_verification");
    g.sample_size(10);
    let spec = mini_spec(Platform::whale(), 128 * 1024);
    g.bench("whale_8p_128k_adcl", move || {
        black_box(spec.run(SelectionLogic::BruteForce).total)
    });
}

fn bench_fig3_network_point(h: &mut Harness) {
    let mut g = h.group("fig3_network");
    g.sample_size(10);
    for name in ["whale", "whale-tcp"] {
        let mut spec = mini_spec(Platform::by_name(name).unwrap(), 128 * 1024);
        if name == "whale-tcp" {
            spec.compute_total = SimTime::from_millis(400);
        }
        g.bench(&format!("linear_fixed/{name}"), move || {
            black_box(spec.run(SelectionLogic::Fixed(0)).total)
        });
    }
}

fn bench_fig6_progress_sweep_point(h: &mut Harness) {
    let mut g = h.group("fig6_progress");
    g.sample_size(10);
    for np in [1usize, 100] {
        let mut spec = mini_spec(Platform::whale(), 1024);
        spec.op = CollectiveOp::Ibcast;
        spec.num_progress = np;
        g.bench(&format!("ibcast_1k/{np}"), move || {
            black_box(spec.run(SelectionLogic::Fixed(0)).total)
        });
    }
}

fn bench_fig9_fft_point(h: &mut Harness) {
    let mut g = h.group("fig9_fft");
    g.sample_size(10);
    let cfg = FftKernelConfig {
        n: 64,
        planes_per_rank: 4,
        iters: 8,
        tile: 2,
        progress_per_tile: 2,
        reps: 2,
        placement: Placement::Block,
    };
    for mode in [FftMode::LibNbc, FftMode::Adcl(SelectionLogic::BruteForce)] {
        g.bench(&format!("windowtiled_8p/{}", mode.name()), move || {
            black_box(
                run_fft_kernel(
                    &Platform::crill(),
                    8,
                    &cfg,
                    FftPattern::WindowTiled,
                    mode,
                    NoiseConfig::none(),
                )
                .total_time,
            )
        });
    }
}

fn main() {
    let mut h = Harness::from_args();
    bench_fig2_verification_point(&mut h);
    bench_fig3_network_point(&mut h);
    bench_fig6_progress_sweep_point(&mut h);
    bench_fig9_fft_point(&mut h);
}
