//! Analytic calibration helpers: closed-form predictions of basic
//! point-to-point metrics for a platform, used to sanity-check the
//! simulator against the model and to document what each preset implies.
//!
//! These are *predictions from the parameters* (no simulation); the
//! integration tests cross-check that the simulated world reproduces them
//! in uncontended conditions.

use crate::params::TransportParams;
use crate::platforms::Platform;
use simcore::SimTime;

/// Predicted metrics for one transport at one message size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct P2pPrediction {
    /// Message size in bytes.
    pub bytes: usize,
    /// One-way latency for this size (uncontended).
    pub one_way: SimTime,
    /// Half round-trip measured by a ping-pong (equals `one_way` in this
    /// model).
    pub half_rtt: SimTime,
    /// Effective bandwidth in GB/s at this size.
    pub bandwidth_gbps: f64,
    /// True if this size ships eagerly.
    pub eager: bool,
}

/// Predict ping-pong behaviour for `bytes` on a transport.
///
/// ```
/// use netmodel::{calibrate, Platform};
/// let whale = Platform::whale();
/// let p = calibrate::predict(&whale.inter, 1024);
/// assert!(p.eager);
/// assert!(p.one_way > whale.inter.latency);
/// ```
pub fn predict(params: &TransportParams, bytes: usize) -> P2pPrediction {
    let one_way = params.uncontended_oneway(bytes);
    // Rendezvous adds the RTS/CTS round trip before the payload moves.
    let one_way = if params.is_eager(bytes) {
        one_way
    } else {
        one_way + params.latency * 2
    };
    let bw = if one_way.is_zero() {
        0.0
    } else {
        bytes as f64 / one_way.as_secs_f64() / 1e9
    };
    P2pPrediction {
        bytes,
        one_way,
        half_rtt: one_way,
        bandwidth_gbps: bw,
        eager: params.is_eager(bytes),
    }
}

/// The standard calibration sweep sizes (1 B .. 4 MiB, powers of four).
pub fn sweep_sizes() -> Vec<usize> {
    (0..12).map(|i| 1usize << (2 * i)).collect()
}

/// Produce the calibration table for a platform's inter-node transport.
pub fn calibration_table(platform: &Platform) -> Vec<P2pPrediction> {
    sweep_sizes()
        .into_iter()
        .map(|s| predict(&platform.inter, s))
        .collect()
}

/// Asymptotic (large-message) bandwidth of a transport in GB/s.
pub fn peak_bandwidth_gbps(params: &TransportParams) -> f64 {
    1.0 / params.gap_ns_per_byte
}

/// The message size at which half the peak bandwidth is reached (the
/// classic `n_1/2` metric), derived from the model parameters.
pub fn n_half(params: &TransportParams) -> usize {
    // bytes*G = L + o_s + o_r  =>  n_1/2 = (L + o_s + o_r) / G
    let overhead_ns = (params.latency + params.o_send + params.o_recv).as_nanos() as f64;
    (overhead_ns / params.gap_ns_per_byte).ceil() as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prediction_components() {
        let p = Platform::whale().inter;
        let small = predict(&p, 1024);
        assert!(small.eager);
        assert_eq!(small.one_way, p.uncontended_oneway(1024));
        let big = predict(&p, 1 << 20);
        assert!(!big.eager);
        assert_eq!(big.one_way, p.uncontended_oneway(1 << 20) + p.latency * 2);
    }

    #[test]
    fn bandwidth_approaches_peak() {
        let p = Platform::crill().inter;
        let big = predict(&p, 16 << 20);
        let peak = peak_bandwidth_gbps(&p);
        assert!(
            big.bandwidth_gbps > peak * 0.95,
            "{} vs peak {}",
            big.bandwidth_gbps,
            peak
        );
        let tiny = predict(&p, 16);
        assert!(tiny.bandwidth_gbps < peak * 0.05);
    }

    #[test]
    fn n_half_sits_between_extremes() {
        for name in Platform::preset_names() {
            let p = Platform::by_name(name).unwrap();
            let nh = n_half(&p.inter);
            let at_nh = predict(&p.inter, nh);
            let peak = peak_bandwidth_gbps(&p.inter);
            // Within the eager regime the n_1/2 formula is exact up to
            // rounding; rendezvous adds a bit more overhead.
            if at_nh.eager {
                assert!(
                    (at_nh.bandwidth_gbps / (peak / 2.0) - 1.0).abs() < 0.05,
                    "{name}: n_1/2={nh} gives {} of peak/2 {}",
                    at_nh.bandwidth_gbps,
                    peak / 2.0
                );
            }
        }
    }

    #[test]
    fn sweep_is_monotone_in_bandwidth() {
        let table = calibration_table(&Platform::whale());
        for w in table.windows(2) {
            assert!(w[0].bandwidth_gbps <= w[1].bandwidth_gbps + 1e-9);
        }
        assert_eq!(table.len(), 12);
    }

    #[test]
    fn tcp_slower_than_ib_at_every_size() {
        let ib = calibration_table(&Platform::whale());
        let tcp = calibration_table(&Platform::whale_tcp());
        for (a, b) in ib.iter().zip(&tcp) {
            assert!(a.one_way < b.one_way, "{} B", a.bytes);
        }
    }
}
