//! Platform presets modelling the machines in the paper's evaluation.
//!
//! | preset | paper machine | nodes × cores | interconnect |
//! |---|---|---|---|
//! | [`Platform::crill`] | crill | 16 × 48 (AMD Magny-Cours) | 2 × 4x DDR InfiniBand |
//! | [`Platform::whale`] | whale | 64 × 8 (AMD Barcelona) | 1 × DDR InfiniBand |
//! | [`Platform::whale_tcp`] | whale-tcp | 64 × 8 | Gigabit Ethernet |
//! | [`Platform::bluegene_p`] | BlueGene/P (KAUST) | 256 × 4 (PPC450) | 3-D torus |
//! | [`Platform::synth_hpc`] | — (synthetic) | 512 × 32 | dual-rail 100G-class fabric |
//!
//! Absolute parameter values are calibrated so the *qualitative* results of
//! the paper hold (algorithm rankings, crossovers); they are in the right
//! ballpark for the 2014-era hardware but are not vendor measurements.

use crate::params::TransportParams;
use simcore::SimTime;

/// A complete machine description: geometry, transports, CPU speed, and
/// progress-engine costs.
#[derive(Debug, Clone, PartialEq)]
pub struct Platform {
    /// Preset name ("crill", "whale", "whale-tcp", "bluegene-p").
    pub name: String,
    /// Number of nodes.
    pub nodes: usize,
    /// Cores (and thus maximum ranks) per node.
    pub cores_per_node: usize,
    /// Network rails per node (crill has two HCAs).
    pub nics_per_node: usize,
    /// Intra-node (shared-memory) transport.
    pub intra: TransportParams,
    /// Inter-node transport.
    pub inter: TransportParams,
    /// Fixed CPU cost of one progress-engine invocation.
    pub o_progress_base: SimTime,
    /// Additional CPU cost per outstanding schedule action polled.
    pub o_progress_per_action: SimTime,
    /// Per-core compute rate in GFLOP/s (used by the FFT compute model).
    pub gflops_per_core: f64,
    /// 3-D torus dimensions if the interconnect is a torus.
    pub torus: Option<(usize, usize, usize)>,
    /// Extra latency per torus hop.
    pub hop_latency: SimTime,
}

/// Relative fault-intensity multipliers for a platform's interconnect.
///
/// The fault-injection layer (`mpisim::fault`) describes fault *rates* in a
/// platform-neutral way; this profile scales them to the hardware being
/// modelled: a lossy commodity Ethernet drops and reorders far more than a
/// credit-flow-controlled InfiniBand fabric or a BlueGene torus with
/// link-level CRC retransmission. A scale of `1.0` means "apply the
/// configured rate unchanged".
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultProfile {
    /// Multiplier on message-drop probability.
    pub drop_scale: f64,
    /// Multiplier on message-duplication probability.
    pub dup_scale: f64,
    /// Multiplier on delivery-delay jitter.
    pub jitter_scale: f64,
    /// Multiplier on NIC-brownout penalty duration.
    pub brownout_scale: f64,
}

impl FaultProfile {
    /// Apply configured fault rates unchanged.
    pub const NEUTRAL: FaultProfile = FaultProfile {
        drop_scale: 1.0,
        dup_scale: 1.0,
        jitter_scale: 1.0,
        brownout_scale: 1.0,
    };
}

impl Platform {
    /// CPU cost of a progress call polling `actions` outstanding actions.
    pub fn progress_cost(&self, actions: usize) -> SimTime {
        self.o_progress_base + self.o_progress_per_action * actions as u64
    }

    /// Fault-intensity profile of this platform's interconnect.
    pub fn fault_profile(&self) -> FaultProfile {
        match self.name.as_str() {
            // Dual-rail DDR InfiniBand: lossless link layer, drops are rare
            // (HCA resource exhaustion), jitter mostly from rail arbitration.
            "crill" => FaultProfile {
                drop_scale: 0.5,
                dup_scale: 0.5,
                jitter_scale: 0.75,
                brownout_scale: 0.5,
            },
            // Commodity GigE + kernel TCP: switch-queue overflow drops,
            // retransmission-driven duplicates and large jitter tails.
            "whale-tcp" => FaultProfile {
                drop_scale: 4.0,
                dup_scale: 2.0,
                jitter_scale: 2.0,
                brownout_scale: 2.0,
            },
            // Torus with link-level CRC + retransmit in hardware: end-to-end
            // loss nearly invisible, jitter absorbed by deterministic routing.
            "bluegene-p" => FaultProfile {
                drop_scale: 0.25,
                dup_scale: 0.25,
                jitter_scale: 0.5,
                brownout_scale: 0.5,
            },
            // Single-rail IB ("whale") and unknown platforms: neutral.
            _ => FaultProfile::NEUTRAL,
        }
    }

    /// Look up a preset by name (accepts `-`/`_` interchangeably).
    pub fn by_name(name: &str) -> Option<Platform> {
        match name.replace('_', "-").as_str() {
            "crill" => Some(Self::crill()),
            "whale" => Some(Self::whale()),
            "whale-tcp" => Some(Self::whale_tcp()),
            "bluegene-p" | "bluegene" | "bgp" => Some(Self::bluegene_p()),
            "synth-hpc" | "synth" => Some(Self::synth_hpc()),
            _ => None,
        }
    }

    /// All preset names.
    pub fn preset_names() -> &'static [&'static str] {
        &["crill", "whale", "whale-tcp", "bluegene-p", "synth-hpc"]
    }

    fn shm(gap_ns_per_byte: f64, latency_ns: u64) -> TransportParams {
        TransportParams {
            name: "shm",
            latency: SimTime::from_nanos(latency_ns),
            gap_ns_per_byte,
            o_send: SimTime::from_nanos(250),
            o_recv: SimTime::from_nanos(200),
            // Shared memory stays eager for fairly large messages (copy via
            // a bounce buffer); rendezvous only for very large transfers.
            eager_threshold: 32 * 1024,
            incast_alpha: 0.02,
            incast_free: 4,
            incast_max: 1.5,
            unexpected_copy_ns_per_byte: 0.2,
        }
    }

    /// *crill*: 16 nodes × four 12-core AMD Opteron 6174 (48 cores/node),
    /// two 4x DDR InfiniBand HCAs per node.
    pub fn crill() -> Platform {
        Platform {
            name: "crill".into(),
            nodes: 16,
            cores_per_node: 48,
            nics_per_node: 2,
            intra: Self::shm(0.18, 300), // ~5.5 GB/s copy bandwidth
            inter: TransportParams {
                name: "ib-ddr",
                latency: SimTime::from_nanos(2_600),
                gap_ns_per_byte: 0.67, // ~1.5 GB/s per rail
                o_send: SimTime::from_nanos(600),
                o_recv: SimTime::from_nanos(500),
                eager_threshold: 12 * 1024,
                incast_alpha: 0.01,
                incast_free: 4,
                incast_max: 1.25,
                unexpected_copy_ns_per_byte: 0.3,
            },
            o_progress_base: SimTime::from_nanos(350),
            o_progress_per_action: SimTime::from_nanos(45),
            gflops_per_core: 2.2,
            torus: None,
            hop_latency: SimTime::ZERO,
        }
    }

    /// *whale*: 64 nodes × two quad-core AMD Opteron 2354 (8 cores/node),
    /// single DDR InfiniBand HCA per node.
    pub fn whale() -> Platform {
        Platform {
            name: "whale".into(),
            nodes: 64,
            cores_per_node: 8,
            nics_per_node: 1,
            intra: Self::shm(0.25, 350), // ~4 GB/s copy bandwidth
            inter: TransportParams {
                name: "ib-ddr",
                latency: SimTime::from_nanos(3_200),
                gap_ns_per_byte: 0.72, // ~1.4 GB/s
                o_send: SimTime::from_nanos(700),
                o_recv: SimTime::from_nanos(600),
                eager_threshold: 12 * 1024,
                incast_alpha: 0.012,
                incast_free: 4,
                incast_max: 1.3,
                unexpected_copy_ns_per_byte: 0.3,
            },
            o_progress_base: SimTime::from_nanos(400),
            o_progress_per_action: SimTime::from_nanos(50),
            gflops_per_core: 1.8,
            torus: None,
            hop_latency: SimTime::ZERO,
        }
    }

    /// *whale-tcp*: the whale cluster using its Gigabit-Ethernet network.
    ///
    /// TCP adds large per-message kernel overheads, ~50 µs latency, and an
    /// aggressive incast penalty: when many senders converge on one receiver
    /// the switch queue overflows and goodput collapses — this is what makes
    /// the linear all-to-all the *worst* choice on this platform (Fig. 3).
    pub fn whale_tcp() -> Platform {
        let mut p = Self::whale();
        p.name = "whale-tcp".into();
        p.inter = TransportParams {
            name: "gige",
            latency: SimTime::from_micros(48),
            gap_ns_per_byte: 8.5, // ~117 MB/s
            o_send: SimTime::from_micros(6),
            o_recv: SimTime::from_micros(5),
            eager_threshold: 64 * 1024,
            incast_alpha: 0.9,
            incast_free: 1,
            incast_max: 25.0,
            unexpected_copy_ns_per_byte: 0.4,
        };
        // Progress over sockets is more expensive (poll/select syscalls).
        p.o_progress_base = SimTime::from_micros(2);
        p.o_progress_per_action = SimTime::from_nanos(300);
        p
    }

    /// IBM BlueGene/P: modelled as 256 nodes × 4 PPC450 cores on an
    /// 8 × 8 × 4 3-D torus (the 1024-process configuration of Fig. 12).
    pub fn bluegene_p() -> Platform {
        Platform {
            name: "bluegene-p".into(),
            nodes: 256,
            cores_per_node: 4,
            nics_per_node: 1,
            intra: Self::shm(0.5, 500), // modest memory system
            inter: TransportParams {
                name: "torus",
                latency: SimTime::from_nanos(2_000),
                gap_ns_per_byte: 2.6, // ~375 MB/s effective per link
                o_send: SimTime::from_nanos(900),
                o_recv: SimTime::from_nanos(800),
                eager_threshold: 4 * 1024,
                incast_alpha: 0.08,
                incast_free: 2,
                incast_max: 2.0,
                unexpected_copy_ns_per_byte: 0.6,
            },
            o_progress_base: SimTime::from_nanos(600),
            o_progress_per_action: SimTime::from_nanos(80),
            gflops_per_core: 0.85,
            torus: Some((8, 8, 4)),
            hop_latency: SimTime::from_nanos(100),
        }
    }

    /// *synth-hpc*: a synthetic modern-HPC machine sized for the 4k–16k-rank
    /// scale experiments (beyond any of the paper's clusters): 512 nodes ×
    /// 32 cores, dual-rail 100 Gb/s-class fabric with sub-microsecond
    /// latency. Used by the `world_scale` benchmark and the partitioned-
    /// engine tests; not a paper machine.
    pub fn synth_hpc() -> Platform {
        Platform {
            name: "synth-hpc".into(),
            nodes: 512,
            cores_per_node: 32,
            nics_per_node: 2,
            intra: Self::shm(0.08, 200), // ~12 GB/s copy bandwidth
            inter: TransportParams {
                name: "hdr-fabric",
                latency: SimTime::from_nanos(900),
                gap_ns_per_byte: 0.09, // ~11 GB/s per rail
                o_send: SimTime::from_nanos(300),
                o_recv: SimTime::from_nanos(250),
                eager_threshold: 16 * 1024,
                incast_alpha: 0.008,
                incast_free: 8,
                incast_max: 1.2,
                unexpected_copy_ns_per_byte: 0.15,
            },
            o_progress_base: SimTime::from_nanos(200),
            o_progress_per_action: SimTime::from_nanos(25),
            gflops_per_core: 24.0,
            torus: None,
            hop_latency: SimTime::ZERO,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_resolve_by_name() {
        for name in Platform::preset_names() {
            let p = Platform::by_name(name).expect("preset");
            assert_eq!(&p.name, name);
        }
        assert!(Platform::by_name("does-not-exist").is_none());
        assert_eq!(Platform::by_name("whale_tcp").unwrap().name, "whale-tcp");
    }

    #[test]
    fn machine_capacities_match_paper() {
        let crill = Platform::crill();
        assert_eq!(crill.nodes * crill.cores_per_node, 768);
        assert_eq!(crill.nics_per_node, 2);
        let whale = Platform::whale();
        assert_eq!(whale.nodes * whale.cores_per_node, 512);
        let bgp = Platform::bluegene_p();
        assert!(bgp.nodes * bgp.cores_per_node >= 1024);
        assert!(bgp.torus.is_some());
    }

    #[test]
    fn tcp_is_slower_and_more_congestible_than_ib() {
        let ib = Platform::whale().inter;
        let tcp = Platform::whale_tcp().inter;
        assert!(tcp.latency > ib.latency);
        assert!(tcp.gap_ns_per_byte > ib.gap_ns_per_byte);
        assert!(tcp.incast_alpha > ib.incast_alpha);
        assert!(tcp.o_send > ib.o_send);
    }

    #[test]
    fn progress_cost_scales_with_actions() {
        let p = Platform::whale();
        let c0 = p.progress_cost(0);
        let c10 = p.progress_cost(10);
        assert_eq!(c10 - c0, p.o_progress_per_action * 10);
    }

    #[test]
    fn fault_profiles_rank_by_fabric_reliability() {
        let tcp = Platform::whale_tcp().fault_profile();
        let ib = Platform::whale().fault_profile();
        let bgp = Platform::bluegene_p().fault_profile();
        assert!(tcp.drop_scale > ib.drop_scale);
        assert!(ib.drop_scale > bgp.drop_scale);
        assert_eq!(ib, FaultProfile::NEUTRAL);
        for p in [tcp, ib, bgp, Platform::crill().fault_profile()] {
            assert!(p.drop_scale >= 0.0 && p.jitter_scale >= 0.0);
        }
    }

    #[test]
    fn intra_is_faster_than_inter() {
        for name in Platform::preset_names() {
            let p = Platform::by_name(name).unwrap();
            assert!(
                p.intra.latency < p.inter.latency,
                "{name}: shm latency should beat network"
            );
            assert!(p.intra.gap_ns_per_byte < p.inter.gap_ns_per_byte);
        }
    }
}
