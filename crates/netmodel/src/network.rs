//! Mutable network contention state and transfer planning.
//!
//! [`NetworkState`] owns the FIFO resources modelling every NIC transmit and
//! receive engine (and each rank's copy engine for shared-memory transfers).
//! The message-passing layer asks it to *plan* a transfer: given the byte
//! count and the posting time, it reserves capacity on the involved engines
//! and returns when the source drains (send completion) and when the data is
//! fully available at the destination (receive completion).

use crate::params::TransportParams;
use crate::platforms::Platform;
use crate::topology::{Placement, Topology};
use simcore::{FifoResource, SimTime};

/// Outcome of planning a data transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransferPlan {
    /// When the source side is done with the message (send completes
    /// locally: buffer reusable).
    pub src_drain: SimTime,
    /// When the payload is fully received at the destination.
    pub dst_drain: SimTime,
    /// Receive-side backlog observed (diagnostics; drives incast penalty).
    pub dst_backlog: usize,
}

/// The network fabric state for one simulation run.
pub struct NetworkState {
    platform: Platform,
    topo: Topology,
    /// Transmit engine per (node, rail).
    nic_tx: Vec<FifoResource>,
    /// Receive engine per (node, rail).
    nic_rx: Vec<FifoResource>,
    /// Per-rank copy engine for intra-node transfers: the sending core
    /// performs the memcpy, so one rank's copies serialize with each other
    /// but different senders on a node proceed in parallel (multi-channel
    /// memory systems).
    copy_engine: Vec<FifoResource>,
    /// Total bytes moved (statistics).
    bytes_moved: u64,
    /// Total messages (statistics).
    messages: u64,
}

impl NetworkState {
    /// Build the fabric for `nranks` ranks placed on `platform`.
    pub fn new(platform: Platform, nranks: usize, placement: Placement) -> Self {
        let topo = Topology::new(
            platform.nodes,
            platform.cores_per_node,
            nranks,
            placement,
            platform.torus,
        );
        let nic_slots = platform.nodes * platform.nics_per_node;
        NetworkState {
            nic_tx: vec![FifoResource::new(); nic_slots],
            nic_rx: vec![FifoResource::new(); nic_slots],
            copy_engine: vec![FifoResource::new(); nranks],
            topo,
            platform,
            bytes_moved: 0,
            messages: 0,
        }
    }

    /// The underlying placement.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The platform description.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// Transport parameters governing a `src → dst` message.
    pub fn params(&self, src: usize, dst: usize) -> &TransportParams {
        if self.topo.same_node(src, dst) {
            &self.platform.intra
        } else {
            &self.platform.inter
        }
    }

    /// True if a message of `bytes` from `src` to `dst` uses the eager
    /// protocol.
    pub fn is_eager(&self, src: usize, dst: usize, bytes: usize) -> bool {
        self.params(src, dst).is_eager(bytes)
    }

    /// NIC rail used by `rank` (round-robin over rails by core index, so
    /// multi-rail nodes spread traffic).
    fn rail_of(&self, rank: usize) -> usize {
        let node = self.topo.node_of(rank);
        node * self.platform.nics_per_node + rank % self.platform.nics_per_node
    }

    /// One-way latency including torus hops.
    fn wire_latency(&self, src: usize, dst: usize) -> SimTime {
        let a = self.topo.node_of(src);
        let b = self.topo.node_of(dst);
        if a == b {
            return self.platform.intra.latency;
        }
        let hops = self.topo.hops(a, b);
        self.platform.inter.latency + self.platform.hop_latency * hops as u64
    }

    /// Plan the movement of `bytes` of payload from `src` to `dst`, with the
    /// source ready to inject at `now`. Reserves NIC/bus capacity.
    pub fn plan_transfer(
        &mut self,
        now: SimTime,
        src: usize,
        dst: usize,
        bytes: usize,
    ) -> TransferPlan {
        self.bytes_moved += bytes as u64;
        self.messages += 1;
        if self.topo.same_node(src, dst) {
            // Intra-node: the sending core performs the copy.
            let service = self.platform.intra.serialize(bytes);
            let grant = self.copy_engine[src].submit(now, service);
            let arrival = grant.drain + self.platform.intra.latency;
            return TransferPlan {
                src_drain: grant.drain,
                dst_drain: arrival,
                dst_backlog: grant.backlog,
            };
        }
        let inter = self.platform.inter.clone();
        // Source transmit engine serializes the payload. Many *concurrent*
        // outgoing streams degrade goodput (congestion losses on TCP,
        // mildly on IB): the service time is inflated by the number of
        // sends already queued on this NIC. This is what makes the linear
        // all-to-all — which posts p-1 sends at once — collapse on
        // Gigabit Ethernet while staying competitive on InfiniBand
        // (paper Fig. 3).
        let tx = self.rail_of(src);
        let tx_backlog = self.nic_tx[tx].backlog_at(now);
        let tx_grant = self.nic_tx[tx].submit(now, inter.serialize_with_backlog(bytes, tx_backlog));
        // Cut-through: the first byte reaches the destination one wire
        // latency after injection starts, and the receive engine drains
        // concurrently with transmission (no store-and-forward doubling).
        let latency = self.wire_latency(src, dst);
        let first_byte = tx_grant.start + latency;
        let rx = self.rail_of(dst);
        let backlog = self.nic_rx[rx].backlog_at(first_byte);
        let rx_service = inter.serialize_with_backlog(bytes, backlog);
        let rx_grant = self.nic_rx[rx].submit(first_byte, rx_service);
        // The last byte cannot be delivered before the sender finished
        // injecting it plus the wire latency.
        let dst_drain = rx_grant.drain.max(tx_grant.drain + latency);
        TransferPlan {
            src_drain: tx_grant.drain,
            dst_drain,
            dst_backlog: backlog,
        }
    }

    /// Arrival time of a small control message (RTS/CTS) sent at `now`.
    /// Control messages bypass the payload queues but still pay the wire
    /// latency.
    pub fn ctrl_arrival(&self, now: SimTime, src: usize, dst: usize) -> SimTime {
        now + self.wire_latency(src, dst)
    }

    /// Total payload bytes planned so far.
    pub fn bytes_moved(&self) -> u64 {
        self.bytes_moved
    }

    /// Total messages planned so far.
    pub fn messages(&self) -> u64 {
        self.messages
    }

    /// Reset all contention state (between independent experiment runs).
    pub fn reset(&mut self) {
        for r in self
            .nic_tx
            .iter_mut()
            .chain(self.nic_rx.iter_mut())
            .chain(self.copy_engine.iter_mut())
        {
            r.reset();
        }
        self.bytes_moved = 0;
        self.messages = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net(nranks: usize) -> NetworkState {
        NetworkState::new(Platform::whale(), nranks, Placement::Block)
    }

    #[test]
    fn intra_vs_inter_transport() {
        let n = net(16); // 2 nodes of 8 on whale
        assert_eq!(n.params(0, 7).name, "shm");
        assert_eq!(n.params(0, 8).name, "ib-ddr");
    }

    #[test]
    fn single_transfer_time_components() {
        let mut n = net(16);
        let now = SimTime::from_micros(10);
        let bytes = 10_000;
        let plan = n.plan_transfer(now, 0, 8, bytes);
        let inter = n.platform().inter.clone();
        let expect_src = now + inter.serialize(bytes);
        assert_eq!(plan.src_drain, expect_src);
        // Cut-through: delivery = injection end + wire latency (the rx
        // engine drains concurrently when uncontended).
        assert_eq!(plan.dst_drain, expect_src + inter.latency);
    }

    #[test]
    fn busy_receive_engine_delays_delivery() {
        let mut n = NetworkState::new(Platform::whale(), 64, Placement::RoundRobin);
        // Two senders to the same destination at the same time: the second
        // message queues behind the first on the rx engine.
        let p1 = n.plan_transfer(SimTime::ZERO, 1, 0, 100_000);
        let p2 = n.plan_transfer(SimTime::ZERO, 2, 0, 100_000);
        assert!(p2.dst_drain >= p1.dst_drain + n.platform().inter.serialize(100_000).scale(0.9));
    }

    #[test]
    fn tx_serialization_queues_messages() {
        let mut n = net(16);
        // Rank 0 sends two messages back-to-back: second waits for first on
        // the TX engine.
        let p1 = n.plan_transfer(SimTime::ZERO, 0, 8, 100_000);
        let p2 = n.plan_transfer(SimTime::ZERO, 0, 9, 100_000);
        assert!(p2.src_drain >= p1.src_drain + n.platform().inter.serialize(100_000));
    }

    #[test]
    fn incast_inflates_receive() {
        let mut n = NetworkState::new(Platform::whale_tcp(), 64, Placement::RoundRobin);
        // Many senders converge on rank 0's NIC at the same time.
        let mut last = SimTime::ZERO;
        for src in 1..32 {
            let p = n.plan_transfer(SimTime::ZERO, src, 0, 50_000);
            last = last.max(p.dst_drain);
        }
        // Compare with the uncongested serial sum of services.
        let serial: SimTime = (1..32).map(|_| n.platform().inter.serialize(50_000)).sum();
        assert!(
            last > serial,
            "incast should be worse than plain serialization: {last} <= {serial}"
        );
    }

    #[test]
    fn multirail_spreads_load() {
        // crill: 2 rails. Two senders on the same node with different core
        // parities use different rails, so their transfers overlap.
        let mut n = NetworkState::new(Platform::crill(), 96, Placement::Block);
        let p1 = n.plan_transfer(SimTime::ZERO, 0, 48, 1_000_000);
        let p2 = n.plan_transfer(SimTime::ZERO, 1, 49, 1_000_000);
        // Same start, same size, different rails -> same drain time.
        assert_eq!(p1.src_drain, p2.src_drain);
    }

    #[test]
    fn torus_latency_grows_with_distance() {
        let n = NetworkState::new(Platform::bluegene_p(), 1024, Placement::Block);
        let near = n.ctrl_arrival(SimTime::ZERO, 0, 4); // next node
        let far = n.ctrl_arrival(SimTime::ZERO, 0, 512); // across the torus
        assert!(far > near, "far={far} near={near}");
    }

    #[test]
    fn reset_clears_counters() {
        let mut n = net(16);
        n.plan_transfer(SimTime::ZERO, 0, 8, 1234);
        assert_eq!(n.bytes_moved(), 1234);
        assert_eq!(n.messages(), 1);
        n.reset();
        assert_eq!(n.bytes_moved(), 0);
        let p = n.plan_transfer(SimTime::ZERO, 0, 8, 10);
        assert_eq!(p.src_drain, n.platform().inter.serialize(10));
    }
}
