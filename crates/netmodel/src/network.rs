//! Mutable network contention state and transfer planning.
//!
//! [`NetworkState`] owns the FIFO resources modelling every NIC transmit and
//! receive engine (and each rank's copy engine for shared-memory transfers).
//! The message-passing layer asks it to *plan* a transfer: given the byte
//! count and the posting time, it reserves capacity on the involved engines
//! and returns when the source drains (send completion) and when the data is
//! fully available at the destination (receive completion).

use crate::params::TransportParams;
use crate::platforms::Platform;
use crate::topology::{Placement, Topology};
use simcore::{FifoResource, SimTime};

/// Outcome of planning a data transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransferPlan {
    /// When the source side is done with the message (send completes
    /// locally: buffer reusable).
    pub src_drain: SimTime,
    /// When the payload is fully received at the destination.
    pub dst_drain: SimTime,
    /// Receive-side backlog observed (diagnostics; drives incast penalty).
    pub dst_backlog: usize,
}

/// Source-side half of a transfer plan ([`NetworkState::tx_plan`]).
///
/// The partitioned engine splits transfer planning in two so that each half
/// touches only resources owned by one rank's partition: the source
/// reserves its transmit (or copy) engine and learns when the leading edge
/// reaches the destination; the destination then reserves its receive
/// engine when that wire event is processed ([`NetworkState::rx_reserve`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TxPlan {
    /// When the source side is done with the message.
    pub src_drain: SimTime,
    /// When the leading edge reaches the destination — the time at which
    /// the destination observes the message and performs its reservation.
    pub wire_at: SimTime,
    /// Earliest possible full delivery: the source finished injecting the
    /// last byte plus one wire latency. Delivery is `max(rx drain, floor)`.
    pub floor: SimTime,
    /// True if the arrival is fully priced at the source (intra-node copy:
    /// the sending core performs the memcpy, no receive engine involved).
    /// `floor` is then the exact arrival and `rx_reserve` must be skipped.
    pub priced: bool,
    /// Backlog seen on the source-side engine (diagnostics).
    pub backlog: usize,
}

/// Receive-side reservation ([`NetworkState::rx_reserve`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RxGrant {
    /// When the receive engine has drained the payload.
    pub drain: SimTime,
    /// Receive-side backlog observed (drives the incast penalty).
    pub backlog: usize,
}

/// The network fabric state for one simulation run.
pub struct NetworkState {
    platform: Platform,
    topo: Topology,
    /// Transmit engine per (node, rail).
    nic_tx: Vec<FifoResource>,
    /// Receive engine per (node, rail).
    nic_rx: Vec<FifoResource>,
    /// Per-rank copy engine for intra-node transfers: the sending core
    /// performs the memcpy, so one rank's copies serialize with each other
    /// but different senders on a node proceed in parallel (multi-channel
    /// memory systems).
    copy_engine: Vec<FifoResource>,
    /// Total bytes moved (statistics).
    bytes_moved: u64,
    /// Total messages (statistics).
    messages: u64,
}

impl NetworkState {
    /// Build the fabric for `nranks` ranks placed on `platform`.
    pub fn new(platform: Platform, nranks: usize, placement: Placement) -> Self {
        let topo = Topology::new(
            platform.nodes,
            platform.cores_per_node,
            nranks,
            placement,
            platform.torus,
        );
        let nic_slots = platform.nodes * platform.nics_per_node;
        NetworkState {
            nic_tx: vec![FifoResource::new(); nic_slots],
            nic_rx: vec![FifoResource::new(); nic_slots],
            copy_engine: vec![FifoResource::new(); nranks],
            topo,
            platform,
            bytes_moved: 0,
            messages: 0,
        }
    }

    /// The underlying placement.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The platform description.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// Transport parameters governing a `src → dst` message.
    pub fn params(&self, src: usize, dst: usize) -> &TransportParams {
        if self.topo.same_node(src, dst) {
            &self.platform.intra
        } else {
            &self.platform.inter
        }
    }

    /// True if a message of `bytes` from `src` to `dst` uses the eager
    /// protocol.
    pub fn is_eager(&self, src: usize, dst: usize, bytes: usize) -> bool {
        self.params(src, dst).is_eager(bytes)
    }

    /// NIC rail used by `rank` (round-robin over rails by core index, so
    /// multi-rail nodes spread traffic).
    fn rail_of(&self, rank: usize) -> usize {
        let node = self.topo.node_of(rank);
        node * self.platform.nics_per_node + rank % self.platform.nics_per_node
    }

    /// One-way latency including torus hops.
    fn wire_latency(&self, src: usize, dst: usize) -> SimTime {
        let a = self.topo.node_of(src);
        let b = self.topo.node_of(dst);
        if a == b {
            return self.platform.intra.latency;
        }
        let hops = self.topo.hops(a, b);
        self.platform.inter.latency + self.platform.hop_latency * hops as u64
    }

    /// Source-side half of transfer planning: reserve the sender's engine
    /// for `bytes` injected at `now`, without touching any receive-side
    /// state. Counts the payload in the byte/message statistics.
    ///
    /// For intra-node transfers the sending core's copy engine fully prices
    /// the arrival (`priced = true`); for inter-node transfers the caller
    /// must complete the plan with [`NetworkState::rx_reserve`] at
    /// `wire_at` on the destination side.
    pub fn tx_plan(&mut self, now: SimTime, src: usize, dst: usize, bytes: usize) -> TxPlan {
        self.bytes_moved += bytes as u64;
        self.messages += 1;
        if self.topo.same_node(src, dst) {
            // Intra-node: the sending core performs the copy.
            let service = self.platform.intra.serialize(bytes);
            let grant = self.copy_engine[src].submit(now, service);
            let arrival = grant.drain + self.platform.intra.latency;
            return TxPlan {
                src_drain: grant.drain,
                wire_at: arrival,
                floor: arrival,
                priced: true,
                backlog: grant.backlog,
            };
        }
        // Source transmit engine serializes the payload. Many *concurrent*
        // outgoing streams degrade goodput (congestion losses on TCP,
        // mildly on IB): the service time is inflated by the number of
        // sends already queued on this NIC. This is what makes the linear
        // all-to-all — which posts p-1 sends at once — collapse on
        // Gigabit Ethernet while staying competitive on InfiniBand
        // (paper Fig. 3).
        let tx = self.rail_of(src);
        let tx_backlog = self.nic_tx[tx].backlog_at(now);
        let tx_grant = self.nic_tx[tx].submit(
            now,
            self.platform
                .inter
                .serialize_with_backlog(bytes, tx_backlog),
        );
        // Cut-through: the first byte reaches the destination one wire
        // latency after injection starts, and the receive engine drains
        // concurrently with transmission (no store-and-forward doubling).
        let latency = self.wire_latency(src, dst);
        TxPlan {
            src_drain: tx_grant.drain,
            wire_at: tx_grant.start + latency,
            // The last byte cannot be delivered before the sender finished
            // injecting it plus the wire latency.
            floor: tx_grant.drain + latency,
            priced: false,
            backlog: tx_backlog,
        }
    }

    /// Receive-side half of transfer planning: reserve `dst`'s receive
    /// engine for `bytes` whose leading edge arrives at `at` (the `wire_at`
    /// of the matching [`TxPlan`]). Delivery completes at
    /// `grant.drain.max(plan.floor)`.
    pub fn rx_reserve(&mut self, at: SimTime, dst: usize, bytes: usize) -> RxGrant {
        let rx = self.rail_of(dst);
        let backlog = self.nic_rx[rx].backlog_at(at);
        let service = self.platform.inter.serialize_with_backlog(bytes, backlog);
        let grant = self.nic_rx[rx].submit(at, service);
        RxGrant {
            drain: grant.drain,
            backlog,
        }
    }

    /// Plan the movement of `bytes` of payload from `src` to `dst`, with the
    /// source ready to inject at `now`. Reserves NIC/bus capacity on both
    /// sides at once (the serial convenience composition of
    /// [`NetworkState::tx_plan`] + [`NetworkState::rx_reserve`]).
    pub fn plan_transfer(
        &mut self,
        now: SimTime,
        src: usize,
        dst: usize,
        bytes: usize,
    ) -> TransferPlan {
        let tx = self.tx_plan(now, src, dst, bytes);
        if tx.priced {
            return TransferPlan {
                src_drain: tx.src_drain,
                dst_drain: tx.floor,
                dst_backlog: tx.backlog,
            };
        }
        let rx = self.rx_reserve(tx.wire_at, dst, bytes);
        TransferPlan {
            src_drain: tx.src_drain,
            dst_drain: rx.drain.max(tx.floor),
            dst_backlog: rx.backlog,
        }
    }

    /// Arrival time of a small control message (RTS/CTS) sent at `now`.
    /// Control messages bypass the payload queues but still pay the wire
    /// latency.
    pub fn ctrl_arrival(&self, now: SimTime, src: usize, dst: usize) -> SimTime {
        now + self.wire_latency(src, dst)
    }

    /// Total payload bytes planned so far.
    pub fn bytes_moved(&self) -> u64 {
        self.bytes_moved
    }

    /// Total messages planned so far.
    pub fn messages(&self) -> u64 {
        self.messages
    }

    /// Minimum one-way latency between any two ranks owned by *different*
    /// partitions under `owner` (`owner[rank] = partition`), or `None` if
    /// every rank is in one partition. This is the conservative-sync
    /// lookahead: any event a rank processes at time `t` can only schedule
    /// work on a rank in another partition at `t + L` or later, because
    /// every cross-partition interaction pays at least one wire latency.
    ///
    /// Partitions are required to be node-aligned (no node's ranks split
    /// across partitions), so every cross-partition pair is inter-node and
    /// the latency floor is `inter.latency + hop_latency × min hops`,
    /// minimized over cross-partition node pairs rather than rank pairs.
    pub fn lookahead(&self, owner: &[u32]) -> Option<SimTime> {
        let mut node_part: Vec<Option<u32>> = vec![None; self.platform.nodes];
        for (rank, &part) in owner.iter().enumerate() {
            let node = self.topo.node_of(rank);
            debug_assert!(
                node_part[node].is_none() || node_part[node] == Some(part),
                "partition split a node across owners"
            );
            node_part[node] = Some(part);
        }
        let mut best: Option<SimTime> = None;
        for a in 0..self.platform.nodes {
            let Some(pa) = node_part[a] else { continue };
            for (b, &slot) in node_part.iter().enumerate().skip(a + 1) {
                let Some(pb) = slot else { continue };
                if pa == pb {
                    continue;
                }
                let lat = self.platform.inter.latency
                    + self.platform.hop_latency * self.topo.hops(a, b) as u64;
                best = Some(best.map_or(lat, |cur: SimTime| cur.min(lat)));
                if self.platform.hop_latency == SimTime::ZERO {
                    // Flat network: every cross pair costs the same.
                    return best;
                }
            }
        }
        best
    }

    /// Move the contention state owned by partition `part` (under the
    /// node-aligned `owner` map) out into a standalone `NetworkState` that
    /// a shard thread can mutate without synchronization. Non-owned slots
    /// in the returned state are fresh idle resources that the shard, by
    /// construction, never touches: sends reserve the source's tx/copy
    /// engines, receive reservations happen on the destination's shard.
    ///
    /// The parent's moved-out slots are left idle; [`NetworkState::absorb_shard`]
    /// restores them. Byte/message statistics start at zero in the shard
    /// and are summed back on absorb.
    pub fn extract_shard(&mut self, owner: &[u32], part: u32) -> NetworkState {
        let nranks = self.copy_engine.len();
        let mut shard = NetworkState {
            nic_tx: vec![FifoResource::new(); self.nic_tx.len()],
            nic_rx: vec![FifoResource::new(); self.nic_rx.len()],
            copy_engine: vec![FifoResource::new(); nranks],
            topo: self.topo.clone(),
            platform: self.platform.clone(),
            bytes_moved: 0,
            messages: 0,
        };
        let mut node_done = vec![false; self.platform.nodes];
        for (rank, &o) in owner.iter().enumerate().take(nranks) {
            if o != part {
                continue;
            }
            std::mem::swap(&mut shard.copy_engine[rank], &mut self.copy_engine[rank]);
            let node = self.topo.node_of(rank);
            if !node_done[node] {
                node_done[node] = true;
                for rail in 0..self.platform.nics_per_node {
                    let slot = node * self.platform.nics_per_node + rail;
                    std::mem::swap(&mut shard.nic_tx[slot], &mut self.nic_tx[slot]);
                    std::mem::swap(&mut shard.nic_rx[slot], &mut self.nic_rx[slot]);
                }
            }
        }
        shard
    }

    /// Move partition `part`'s contention state back from `shard` (the
    /// inverse of [`NetworkState::extract_shard`]) and add its statistics.
    pub fn absorb_shard(&mut self, mut shard: NetworkState, owner: &[u32], part: u32) {
        let nranks = self.copy_engine.len();
        let mut node_done = vec![false; self.platform.nodes];
        for (rank, &o) in owner.iter().enumerate().take(nranks) {
            if o != part {
                continue;
            }
            std::mem::swap(&mut self.copy_engine[rank], &mut shard.copy_engine[rank]);
            let node = self.topo.node_of(rank);
            if !node_done[node] {
                node_done[node] = true;
                for rail in 0..self.platform.nics_per_node {
                    let slot = node * self.platform.nics_per_node + rail;
                    std::mem::swap(&mut self.nic_tx[slot], &mut shard.nic_tx[slot]);
                    std::mem::swap(&mut self.nic_rx[slot], &mut shard.nic_rx[slot]);
                }
            }
        }
        self.bytes_moved += shard.bytes_moved;
        self.messages += shard.messages;
    }

    /// Reset all contention state (between independent experiment runs).
    pub fn reset(&mut self) {
        for r in self
            .nic_tx
            .iter_mut()
            .chain(self.nic_rx.iter_mut())
            .chain(self.copy_engine.iter_mut())
        {
            r.reset();
        }
        self.bytes_moved = 0;
        self.messages = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net(nranks: usize) -> NetworkState {
        NetworkState::new(Platform::whale(), nranks, Placement::Block)
    }

    #[test]
    fn intra_vs_inter_transport() {
        let n = net(16); // 2 nodes of 8 on whale
        assert_eq!(n.params(0, 7).name, "shm");
        assert_eq!(n.params(0, 8).name, "ib-ddr");
    }

    #[test]
    fn single_transfer_time_components() {
        let mut n = net(16);
        let now = SimTime::from_micros(10);
        let bytes = 10_000;
        let plan = n.plan_transfer(now, 0, 8, bytes);
        let inter = n.platform().inter.clone();
        let expect_src = now + inter.serialize(bytes);
        assert_eq!(plan.src_drain, expect_src);
        // Cut-through: delivery = injection end + wire latency (the rx
        // engine drains concurrently when uncontended).
        assert_eq!(plan.dst_drain, expect_src + inter.latency);
    }

    #[test]
    fn busy_receive_engine_delays_delivery() {
        let mut n = NetworkState::new(Platform::whale(), 64, Placement::RoundRobin);
        // Two senders to the same destination at the same time: the second
        // message queues behind the first on the rx engine.
        let p1 = n.plan_transfer(SimTime::ZERO, 1, 0, 100_000);
        let p2 = n.plan_transfer(SimTime::ZERO, 2, 0, 100_000);
        assert!(p2.dst_drain >= p1.dst_drain + n.platform().inter.serialize(100_000).scale(0.9));
    }

    #[test]
    fn tx_serialization_queues_messages() {
        let mut n = net(16);
        // Rank 0 sends two messages back-to-back: second waits for first on
        // the TX engine.
        let p1 = n.plan_transfer(SimTime::ZERO, 0, 8, 100_000);
        let p2 = n.plan_transfer(SimTime::ZERO, 0, 9, 100_000);
        assert!(p2.src_drain >= p1.src_drain + n.platform().inter.serialize(100_000));
    }

    #[test]
    fn incast_inflates_receive() {
        let mut n = NetworkState::new(Platform::whale_tcp(), 64, Placement::RoundRobin);
        // Many senders converge on rank 0's NIC at the same time.
        let mut last = SimTime::ZERO;
        for src in 1..32 {
            let p = n.plan_transfer(SimTime::ZERO, src, 0, 50_000);
            last = last.max(p.dst_drain);
        }
        // Compare with the uncongested serial sum of services.
        let serial: SimTime = (1..32).map(|_| n.platform().inter.serialize(50_000)).sum();
        assert!(
            last > serial,
            "incast should be worse than plain serialization: {last} <= {serial}"
        );
    }

    #[test]
    fn multirail_spreads_load() {
        // crill: 2 rails. Two senders on the same node with different core
        // parities use different rails, so their transfers overlap.
        let mut n = NetworkState::new(Platform::crill(), 96, Placement::Block);
        let p1 = n.plan_transfer(SimTime::ZERO, 0, 48, 1_000_000);
        let p2 = n.plan_transfer(SimTime::ZERO, 1, 49, 1_000_000);
        // Same start, same size, different rails -> same drain time.
        assert_eq!(p1.src_drain, p2.src_drain);
    }

    #[test]
    fn torus_latency_grows_with_distance() {
        let n = NetworkState::new(Platform::bluegene_p(), 1024, Placement::Block);
        let near = n.ctrl_arrival(SimTime::ZERO, 0, 4); // next node
        let far = n.ctrl_arrival(SimTime::ZERO, 0, 512); // across the torus
        assert!(far > near, "far={far} near={near}");
    }

    #[test]
    fn split_plan_matches_plan_transfer() {
        // tx_plan + rx_reserve on one state must equal plan_transfer on a
        // fresh identical state, for both intra- and inter-node paths.
        let mut whole = net(16);
        let mut split = net(16);
        for (src, dst, bytes, at) in [
            (0usize, 8usize, 100_000usize, 0u64),
            (1, 9, 50_000, 10),
            (0, 7, 20_000, 20), // intra-node
            (8, 0, 64, 30),
            (0, 8, 100_000, 30),
        ] {
            let now = SimTime::from_micros(at);
            let want = whole.plan_transfer(now, src, dst, bytes);
            let tx = split.tx_plan(now, src, dst, bytes);
            let got = if tx.priced {
                (tx.src_drain, tx.floor)
            } else {
                let rx = split.rx_reserve(tx.wire_at, dst, bytes);
                (tx.src_drain, rx.drain.max(tx.floor))
            };
            assert_eq!(got, (want.src_drain, want.dst_drain), "{src}->{dst}");
        }
        assert_eq!(whole.bytes_moved(), split.bytes_moved());
        assert_eq!(whole.messages(), split.messages());
    }

    #[test]
    fn shard_extract_absorb_roundtrip() {
        // Partition whale's 16 ranks (2 nodes of 8) into two node-aligned
        // halves; run the same transfers via shards as a serial state would,
        // then verify the absorbed state plans future transfers identically.
        let owner: Vec<u32> = (0..16).map(|r| (r / 8) as u32).collect();
        let mut serial = net(16);
        let mut parted = net(16);
        let mut s0 = parted.extract_shard(&owner, 0);
        let mut s1 = parted.extract_shard(&owner, 1);

        // Rank 0 (part 0) sends to rank 8 (part 1): tx on shard 0, rx on
        // shard 1 — mirrored on the serial state via the same split calls.
        let tx = s0.tx_plan(SimTime::ZERO, 0, 8, 100_000);
        let rx = s1.rx_reserve(tx.wire_at, 8, 100_000);
        let tx_ref = serial.tx_plan(SimTime::ZERO, 0, 8, 100_000);
        let rx_ref = serial.rx_reserve(tx_ref.wire_at, 8, 100_000);
        assert_eq!(tx, tx_ref);
        assert_eq!(rx, rx_ref);
        // Intra-node on shard 1.
        let p_intra = s1.tx_plan(SimTime::ZERO, 8, 9, 4_000);
        let p_intra_ref = serial.tx_plan(SimTime::ZERO, 8, 9, 4_000);
        assert_eq!(p_intra, p_intra_ref);

        parted.absorb_shard(s0, &owner, 0);
        parted.absorb_shard(s1, &owner, 1);
        assert_eq!(parted.bytes_moved(), serial.bytes_moved());
        assert_eq!(parted.messages(), serial.messages());
        // Contention state carried over: a follow-up send from rank 0
        // queues behind the earlier one identically in both states.
        let follow = parted.plan_transfer(SimTime::ZERO, 0, 9, 100_000);
        let follow_ref = serial.plan_transfer(SimTime::ZERO, 0, 9, 100_000);
        assert_eq!(follow, follow_ref);
    }

    #[test]
    fn lookahead_is_min_cross_partition_latency() {
        let n = net(16); // whale: flat network, hop_latency 0
        let owner: Vec<u32> = (0..16).map(|r| (r / 8) as u32).collect();
        assert_eq!(n.lookahead(&owner), Some(n.platform().inter.latency));
        // Single partition: no cross pairs.
        assert_eq!(n.lookahead(&[0u32; 16]), None);
        // Torus: lookahead includes the minimum hop cost between partitions.
        let bgp = NetworkState::new(Platform::bluegene_p(), 1024, Placement::Block);
        let owner: Vec<u32> = (0..1024).map(|r| (r / 512) as u32).collect();
        let l = bgp.lookahead(&owner).unwrap();
        assert!(l >= bgp.platform().inter.latency + bgp.platform().hop_latency);
    }

    #[test]
    fn reset_clears_counters() {
        let mut n = net(16);
        n.plan_transfer(SimTime::ZERO, 0, 8, 1234);
        assert_eq!(n.bytes_moved(), 1234);
        assert_eq!(n.messages(), 1);
        n.reset();
        assert_eq!(n.bytes_moved(), 0);
        let p = n.plan_transfer(SimTime::ZERO, 0, 8, 10);
        assert_eq!(p.src_drain, n.platform().inter.serialize(10));
    }
}
