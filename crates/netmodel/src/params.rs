//! Per-transport LogGP-style parameters.

use simcore::SimTime;

/// Cost parameters for one transport (shared memory, InfiniBand, TCP/GigE,
/// or a torus link).
///
/// The model follows LogGP (Culler et al.): a message of `s` bytes posted at
/// time `t` costs the sender `o_send` CPU time, occupies the transmit engine
/// for `s * G` (`G` = `gap_ns_per_byte`), crosses the wire in `L`
/// (`latency`), then occupies the receive engine for `s * G` — inflated by
/// an incast penalty when the receive engine is backlogged.
#[derive(Debug, Clone, PartialEq)]
pub struct TransportParams {
    /// Human-readable transport name ("shm", "ib-ddr", "gige", "torus").
    pub name: &'static str,
    /// One-way wire latency `L`.
    pub latency: SimTime,
    /// Inverse bandwidth `G` in nanoseconds per byte (e.g. 1.5 GB/s ⇒ 0.667).
    pub gap_ns_per_byte: f64,
    /// CPU overhead for posting one send (not overlappable).
    pub o_send: SimTime,
    /// CPU overhead for posting one receive (not overlappable).
    pub o_recv: SimTime,
    /// Messages at most this many bytes use the eager protocol; larger ones
    /// use rendezvous (RTS/CTS, which requires progress on both sides).
    pub eager_threshold: usize,
    /// Incast penalty slope: effective receive gap is multiplied by
    /// `1 + incast_alpha * max(0, backlog - incast_free)`.
    pub incast_alpha: f64,
    /// Number of backlogged messages tolerated before the penalty applies.
    pub incast_free: usize,
    /// Upper bound on the congestion penalty factor (real networks
    /// saturate; goodput does not degrade without limit).
    pub incast_max: f64,
    /// Extra cost per byte for copying an *unexpected* eager message out of
    /// the bounce buffer once the receive is finally posted.
    pub unexpected_copy_ns_per_byte: f64,
}

impl TransportParams {
    /// Pure serialization time for `bytes` on this transport (no contention).
    pub fn serialize(&self, bytes: usize) -> SimTime {
        SimTime::from_secs_f64(bytes as f64 * self.gap_ns_per_byte * 1e-9)
    }

    /// Serialization time inflated by the incast penalty for a given receive
    /// backlog.
    pub fn serialize_with_backlog(&self, bytes: usize, backlog: usize) -> SimTime {
        let over = backlog.saturating_sub(self.incast_free) as f64;
        let penalty = (1.0 + self.incast_alpha * over).min(self.incast_max);
        self.serialize(bytes).scale(penalty)
    }

    /// True if `bytes` is sent eagerly on this transport.
    pub fn is_eager(&self, bytes: usize) -> bool {
        bytes <= self.eager_threshold
    }

    /// Copy-out cost for an unexpected eager message of `bytes`.
    pub fn unexpected_copy(&self, bytes: usize) -> SimTime {
        SimTime::from_secs_f64(bytes as f64 * self.unexpected_copy_ns_per_byte * 1e-9)
    }

    /// Naive un-contended one-way time for `bytes` (used for calibration
    /// sanity checks, not by the simulator itself).
    pub fn uncontended_oneway(&self, bytes: usize) -> SimTime {
        self.o_send + self.serialize(bytes) + self.latency + self.o_recv
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p() -> TransportParams {
        TransportParams {
            name: "test",
            latency: SimTime::from_micros(3),
            gap_ns_per_byte: 1.0,
            o_send: SimTime::from_nanos(500),
            o_recv: SimTime::from_nanos(400),
            eager_threshold: 1024,
            incast_alpha: 0.5,
            incast_free: 2,
            incast_max: 16.0,
            unexpected_copy_ns_per_byte: 0.25,
        }
    }

    #[test]
    fn serialize_scales_linearly() {
        let tp = p();
        assert_eq!(tp.serialize(1000), SimTime::from_micros(1));
        assert_eq!(tp.serialize(0), SimTime::ZERO);
    }

    #[test]
    fn incast_penalty_applies_above_free_slots() {
        let tp = p();
        // backlog <= incast_free: no penalty
        assert_eq!(tp.serialize_with_backlog(1000, 0), tp.serialize(1000));
        assert_eq!(tp.serialize_with_backlog(1000, 2), tp.serialize(1000));
        // backlog 4 -> 2 over -> x2
        assert_eq!(tp.serialize_with_backlog(1000, 4), SimTime::from_micros(2));
    }

    #[test]
    fn eager_threshold_boundary() {
        let tp = p();
        assert!(tp.is_eager(1024));
        assert!(!tp.is_eager(1025));
    }

    #[test]
    fn uncontended_oneway_adds_components() {
        let tp = p();
        let t = tp.uncontended_oneway(1000);
        assert_eq!(
            t,
            SimTime::from_nanos(500) // o_send
                + SimTime::from_micros(1) // 1000 B * 1 ns/B
                + SimTime::from_micros(3) // L
                + SimTime::from_nanos(400) // o_recv
        );
    }

    #[test]
    fn unexpected_copy_cost() {
        let tp = p();
        assert_eq!(tp.unexpected_copy(4000), SimTime::from_micros(1));
    }
}
