//! `netmodel` — network and platform cost models for the simulated cluster.
//!
//! The paper evaluates auto-tuned non-blocking collectives on two InfiniBand
//! clusters (*crill*, *whale*), a Gigabit-Ethernet configuration
//! (*whale-tcp*) and an IBM BlueGene/P. This crate models those platforms
//! with a LogGP-style cost model extended with the contention effects that
//! drive the paper's results:
//!
//! * per-message CPU posting overheads (`o_send` / `o_recv`) — not
//!   overlappable with computation,
//! * NIC serialization — a node's transmit and receive engines are FIFO
//!   resources with finite bandwidth (`G` seconds per byte),
//! * incast/congestion penalties — effective receive bandwidth degrades when
//!   many flows converge on one NIC, catastrophically so for TCP,
//! * eager vs. rendezvous protocol selection by message size,
//! * multi-rail NICs (crill has two HCAs per node) and 3-D torus hop
//!   latencies (BlueGene/P).
//!
//! [`NetworkState`] is the mutable contention state consulted by the `mpisim`
//! message-passing layer; [`Platform`] presets live in [`platforms`].

pub mod calibrate;
pub mod network;
pub mod params;
pub mod platforms;
pub mod topology;

pub use network::{NetworkState, TransferPlan};
pub use params::TransportParams;
pub use platforms::{FaultProfile, Platform};
pub use topology::{Placement, Topology};
