//! Rank-to-node placement and torus geometry.

/// How ranks are assigned to nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// Fill each node's cores before moving to the next node (the common
    /// batch-scheduler default and what the paper's clusters used).
    Block,
    /// Distribute ranks round-robin across nodes (one rank per node per
    /// cycle); maximizes inter-node traffic for a given rank count.
    RoundRobin,
}

/// Maps ranks onto a machine of `nodes × cores_per_node`.
#[derive(Debug, Clone)]
pub struct Topology {
    nodes: usize,
    cores_per_node: usize,
    /// `rank -> node` index.
    node_of: Vec<usize>,
    /// 3-D torus dimensions, if the interconnect is a torus (BlueGene/P).
    torus: Option<(usize, usize, usize)>,
}

impl Topology {
    /// Build a placement of `nranks` ranks.
    ///
    /// # Panics
    /// Panics if the machine does not have enough cores, or if a node count
    /// does not match the torus dimensions.
    pub fn new(
        nodes: usize,
        cores_per_node: usize,
        nranks: usize,
        placement: Placement,
        torus: Option<(usize, usize, usize)>,
    ) -> Self {
        assert!(nodes > 0 && cores_per_node > 0, "empty machine");
        assert!(
            nranks <= nodes * cores_per_node,
            "{nranks} ranks do not fit on {nodes} nodes x {cores_per_node} cores"
        );
        if let Some((x, y, z)) = torus {
            assert_eq!(x * y * z, nodes, "torus dims must cover all nodes");
        }
        let node_of = match placement {
            Placement::Block => (0..nranks).map(|r| r / cores_per_node).collect(),
            Placement::RoundRobin => (0..nranks).map(|r| r % nodes).collect(),
        };
        Topology {
            nodes,
            cores_per_node,
            node_of,
            torus,
        }
    }

    /// Number of ranks placed.
    pub fn nranks(&self) -> usize {
        self.node_of.len()
    }

    /// Number of nodes in the machine.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Cores per node.
    pub fn cores_per_node(&self) -> usize {
        self.cores_per_node
    }

    /// The node hosting `rank`.
    pub fn node_of(&self, rank: usize) -> usize {
        self.node_of[rank]
    }

    /// True if both ranks share a node (⇒ shared-memory transport).
    pub fn same_node(&self, a: usize, b: usize) -> bool {
        self.node_of[a] == self.node_of[b]
    }

    /// Number of ranks on the node hosting `rank`.
    pub fn ranks_on_node(&self, node: usize) -> usize {
        self.node_of.iter().filter(|&&n| n == node).count()
    }

    /// Torus hop count between two nodes (0 for non-torus machines or the
    /// same node). Uses shortest wrap-around Manhattan distance.
    pub fn hops(&self, node_a: usize, node_b: usize) -> usize {
        if node_a == node_b {
            return 0;
        }
        match self.torus {
            None => 1, // flat switched network: one "hop"
            Some(dims) => {
                let a = Self::coords(node_a, dims);
                let b = Self::coords(node_b, dims);
                let d = |p: usize, q: usize, n: usize| {
                    let diff = p.abs_diff(q);
                    diff.min(n - diff)
                };
                d(a.0, b.0, dims.0) + d(a.1, b.1, dims.1) + d(a.2, b.2, dims.2)
            }
        }
    }

    fn coords(node: usize, (x, y, _z): (usize, usize, usize)) -> (usize, usize, usize) {
        (node % x, (node / x) % y, node / (x * y))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_placement_fills_nodes() {
        let t = Topology::new(4, 8, 32, Placement::Block, None);
        assert_eq!(t.node_of(0), 0);
        assert_eq!(t.node_of(7), 0);
        assert_eq!(t.node_of(8), 1);
        assert_eq!(t.node_of(31), 3);
        assert!(t.same_node(0, 7));
        assert!(!t.same_node(7, 8));
    }

    #[test]
    fn round_robin_spreads() {
        let t = Topology::new(4, 8, 8, Placement::RoundRobin, None);
        assert_eq!(t.node_of(0), 0);
        assert_eq!(t.node_of(1), 1);
        assert_eq!(t.node_of(4), 0);
        assert_eq!(t.ranks_on_node(0), 2);
    }

    #[test]
    #[should_panic(expected = "do not fit")]
    fn overfull_machine_rejected() {
        Topology::new(2, 4, 9, Placement::Block, None);
    }

    #[test]
    fn flat_network_hops() {
        let t = Topology::new(4, 8, 32, Placement::Block, None);
        assert_eq!(t.hops(0, 0), 0);
        assert_eq!(t.hops(0, 3), 1);
    }

    #[test]
    fn torus_hops_wrap() {
        // 4x4x2 torus = 32 nodes
        let t = Topology::new(32, 4, 128, Placement::Block, Some((4, 4, 2)));
        assert_eq!(t.hops(0, 0), 0);
        // node 1 = (1,0,0): 1 hop
        assert_eq!(t.hops(0, 1), 1);
        // node 3 = (3,0,0): wraps to 1 hop
        assert_eq!(t.hops(0, 3), 1);
        // node 2 = (2,0,0): 2 hops either way
        assert_eq!(t.hops(0, 2), 2);
        // node 16 = (0,0,1): 1 hop in z
        assert_eq!(t.hops(0, 16), 1);
        // farthest corner: (2,2,1) -> 2+2+1
        let far = 2 + 2 * 4 + 16;
        assert_eq!(t.hops(0, far), 5);
    }

    #[test]
    #[should_panic(expected = "torus dims")]
    fn bad_torus_dims_rejected() {
        Topology::new(10, 4, 8, Placement::Block, Some((2, 2, 2)));
    }
}
