#!/usr/bin/env bash
# Full verification pass: formatting, lints, build, tests, the smoke-sized
# figure suite (serial vs parallel, payload modes, memo replay, and the
# intra-world partitioned engine under NBC_WORLD_PAR must all be
# byte-identical), a bench regression guard against the committed
# BENCH_engine.json, a refresh of the engine perf trajectory (including the
# 4096-rank world_scale partition-identity check), and a clamped-aware
# scaling gate (rows marked "clamped": true are skipped explicitly; hard
# floors apply to the physically meaningful rows).
#
# Usage: scripts/verify.sh [--profile] [--guidelines]
#   --profile     also write BENCH_profile.json (per-phase wall-time
#                 breakdown: build / sim / merge) next to BENCH_engine.json
#   --guidelines  also run the FULL guideline sweep twice and require the
#                 two BENCH_guidelines.json documents byte-identical (the
#                 quick sweep always runs as a hard gate)
set -euo pipefail
cd "$(dirname "$0")/.."

PROFILE_FLAG=""
GUIDELINES_FULL=""
for arg in "$@"; do
    case "$arg" in
        --profile) PROFILE_FLAG="--profile" ;;
        --guidelines) GUIDELINES_FULL=1 ;;
        *)
            echo "unknown argument: $arg (supported: --profile --guidelines)" >&2
            exit 2
            ;;
    esac
done

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo build --release"
cargo build --release --workspace --all-targets

echo "== cargo test"
cargo test --workspace -q

echo "== quick figure suite: --jobs 1 vs --jobs 8 must be byte-identical"
for bin in table_verification_stats table_fft_stats; do
    s1=$(./target/release/"$bin" --quick --jobs 1)
    s8=$(./target/release/"$bin" --quick --jobs 8)
    if [ "$s1" != "$s8" ]; then
        echo "FAIL: $bin output differs between --jobs 1 and --jobs 8" >&2
        diff <(printf '%s\n' "$s1") <(printf '%s\n' "$s8") >&2 || true
        exit 1
    fi
    echo "   $bin: identical ($(printf '%s' "$s1" | wc -c) bytes)"
done

echo "== payload modes: pooled vs naive vs off must be byte-identical"
ref=$(NBC_PAYLOADS=pooled NBC_MEMO=off ./target/release/table_verification_stats --quick --jobs 1)
for mode in naive off; do
    out=$(NBC_PAYLOADS=$mode NBC_MEMO=off ./target/release/table_verification_stats --quick --jobs 1)
    if [ "$ref" != "$out" ]; then
        echo "FAIL: table_verification_stats differs between NBC_PAYLOADS=pooled and =$mode" >&2
        diff <(printf '%s\n' "$ref") <(printf '%s\n' "$out") >&2 || true
        exit 1
    fi
    echo "   NBC_PAYLOADS=$mode: identical"
done

echo "== sim memo: memoized re-run must be byte-identical to fresh"
fresh=$(NBC_MEMO=off ./target/release/table_verification_stats --quick --jobs 1)
memo=$(NBC_MEMO=on ./target/release/table_verification_stats --quick --jobs 1)
if [ "$fresh" != "$memo" ]; then
    echo "FAIL: table_verification_stats differs between NBC_MEMO=off and =on" >&2
    diff <(printf '%s\n' "$fresh") <(printf '%s\n' "$memo") >&2 || true
    exit 1
fi
echo "   NBC_MEMO on/off: identical"

echo "== tracing: stdout with NBC_TRACE set must be byte-identical to untraced"
trace_file=/tmp/verify_trace.$$.json
plain=$(./target/release/fig6_progress_cost --quick)
traced=$(NBC_TRACE=$trace_file NBC_TRACE_CAP=20000 ./target/release/fig6_progress_cost --quick 2>/dev/null)
if [ "$plain" != "$traced" ]; then
    echo "FAIL: fig6_progress_cost stdout differs when NBC_TRACE is set" >&2
    diff <(printf '%s\n' "$plain") <(printf '%s\n' "$traced") >&2 || true
    exit 1
fi
echo "   NBC_TRACE on/off: identical"

echo "== faults: NBC_FAULTS=off must be byte-identical to unset"
fref=$(./target/release/fig6_progress_cost --quick)
foff=$(NBC_FAULTS=off ./target/release/fig6_progress_cost --quick)
if [ "$fref" != "$foff" ]; then
    echo "FAIL: fig6_progress_cost differs between NBC_FAULTS=off and unset" >&2
    diff <(printf '%s\n' "$fref") <(printf '%s\n' "$foff") >&2 || true
    exit 1
fi
echo "   NBC_FAULTS=off: identical"

echo "== faults: a fixed fault seed must replay byte-identically"
fa=$(NBC_FAULTS=light:42 ./target/release/fig6_progress_cost --quick)
fb=$(NBC_FAULTS=light:42 ./target/release/fig6_progress_cost --quick)
if [ "$fa" != "$fb" ]; then
    echo "FAIL: fig6_progress_cost not deterministic under NBC_FAULTS=light:42" >&2
    diff <(printf '%s\n' "$fa") <(printf '%s\n' "$fb") >&2 || true
    exit 1
fi
if [ "$fa" = "$fref" ]; then
    echo "FAIL: NBC_FAULTS=light:42 did not perturb fig6_progress_cost at all" >&2
    exit 1
fi
echo "   NBC_FAULTS=light:42: deterministic and distinct from healthy run"

echo "== intra-world partitioning: NBC_WORLD_PAR must be byte-identical to serial"
# The whole figure run — network timings, metrics lines, tuner decisions —
# must not move by a single byte under any forced partition count, with and
# without fault injection. (The mpisim integration test covers digests,
# traces and registry deltas at the engine level; this gate covers the
# user-visible output end to end.)
for n in 2 4 8; do
    wout=$(NBC_WORLD_PAR=$n ./target/release/fig6_progress_cost --quick)
    if [ "$wout" != "$fref" ]; then
        echo "FAIL: fig6_progress_cost differs between NBC_WORLD_PAR=$n and serial" >&2
        diff <(printf '%s\n' "$fref") <(printf '%s\n' "$wout") >&2 || true
        exit 1
    fi
    echo "   NBC_WORLD_PAR=$n: identical"
done
wfl=$(NBC_FAULTS=light:42 NBC_WORLD_PAR=4 ./target/release/fig6_progress_cost --quick)
if [ "$wfl" != "$fa" ]; then
    echo "FAIL: fig6_progress_cost under NBC_FAULTS=light:42 differs between NBC_WORLD_PAR=4 and serial" >&2
    diff <(printf '%s\n' "$fa") <(printf '%s\n' "$wfl") >&2 || true
    exit 1
fi
echo "   NBC_WORLD_PAR=4 + NBC_FAULTS=light:42: identical"

echo "== ablation_faults smoke run (retry absorption + graceful demotion)"
ab1=$(./target/release/ablation_faults --quick)
ab2=$(./target/release/ablation_faults --quick)
if [ "$ab1" != "$ab2" ]; then
    echo "FAIL: ablation_faults output not deterministic" >&2
    diff <(printf '%s\n' "$ab1") <(printf '%s\n' "$ab2") >&2 || true
    exit 1
fi
if ! printf '%s\n' "$ab1" | grep -q 'demoted: .*linear'; then
    echo "FAIL: ablation_faults total-loss scenario demoted nothing" >&2
    exit 1
fi
echo "   ablation_faults: deterministic, demotes under total loss"

echo "== trace_inspect smoke run"
inspect=$(./target/release/trace_inspect "$trace_file")
if ! printf '%s\n' "$inspect" | grep -q 'rendezvous stalls.*spans'; then
    rm -f "$trace_file"
    echo "FAIL: trace_inspect found no rendezvous-stall spans in the fig6 trace" >&2
    exit 1
fi
if ! printf '%s\n' "$inspect" | grep -q 'adcl audit:'; then
    rm -f "$trace_file"
    echo "FAIL: trace_inspect found no audit section" >&2
    exit 1
fi
echo "   trace_inspect: parsed $(printf '%s' "$inspect" | head -1 | sed 's/.*: //')"
pinspect=$(./target/release/trace_inspect "$trace_file" --parts 2 --platform whale)
rm -f "$trace_file"
if ! printf '%s\n' "$pinspect" | grep -qi 'partition'; then
    echo "FAIL: trace_inspect --parts 2 produced no partition attribution" >&2
    exit 1
fi
echo "   trace_inspect --parts 2: partition attribution present"

echo "== guidelines: quick sweep is a hard gate (zero severe violations)"
# The decision-quality observatory: every registered performance guideline
# (monotonicity, dominance, mock-up composition) evaluated on the quick
# grid. A severe violation (a fixed algorithm getting faster on more data,
# or an unmeasurable lhs) makes guidelines_report exit non-zero.
# Informational violations (a mock-up or sibling set winning) are listed
# in the output and recorded in BENCH_guidelines.json.
gq1=/tmp/verify_guidelines_j1.$$.json
gq8=/tmp/verify_guidelines_j8.$$.json
gq8b=/tmp/verify_guidelines_j8b.$$.json
s1=$(./target/release/guidelines_report --quick --jobs 1 --out "$gq1" 2>/dev/null) || {
    printf '%s\n' "$s1" >&2
    rm -f "$gq1" "$gq8" "$gq8b"
    echo "FAIL: guidelines_report --quick found severe violations (or failed)" >&2
    exit 1
}
s8=$(./target/release/guidelines_report --quick --jobs 8 --out "$gq8" 2>/dev/null) || {
    rm -f "$gq1" "$gq8" "$gq8b"
    echo "FAIL: guidelines_report --quick --jobs 8 found severe violations (or failed)" >&2
    exit 1
}
if [ "$s1" != "$s8" ]; then
    echo "FAIL: guidelines_report stdout differs between --jobs 1 and --jobs 8" >&2
    diff <(printf '%s\n' "$s1") <(printf '%s\n' "$s8") >&2 || true
    rm -f "$gq1" "$gq8" "$gq8b"
    exit 1
fi
if ! cmp -s "$gq1" "$gq8"; then
    echo "FAIL: BENCH_guidelines.json differs between --jobs 1 and --jobs 8" >&2
    rm -f "$gq1" "$gq8" "$gq8b"
    exit 1
fi
./target/release/guidelines_report --quick --jobs 8 --out "$gq8b" >/dev/null 2>&1 || {
    rm -f "$gq1" "$gq8" "$gq8b"
    echo "FAIL: guidelines_report --quick re-run failed" >&2
    exit 1
}
if ! cmp -s "$gq8" "$gq8b"; then
    echo "FAIL: BENCH_guidelines.json not byte-identical across re-runs" >&2
    rm -f "$gq1" "$gq8" "$gq8b"
    exit 1
fi
# Coverage floors from the deterministic summary line
# ("guidelines_report: N guidelines, P platforms, C checks (quick sweep)").
gcount=$(printf '%s\n' "$s1" | awk '/^guidelines_report:/ {print $2}')
pcount=$(printf '%s\n' "$s1" | awk '/^guidelines_report:/ {print $4}')
if [ "${gcount:-0}" -lt 8 ] || [ "${pcount:-0}" -lt 3 ]; then
    echo "FAIL: guideline coverage too thin (${gcount:-0} guidelines, ${pcount:-0} platforms; need >= 8 over >= 3)" >&2
    rm -f "$gq1" "$gq8" "$gq8b"
    exit 1
fi
cp "$gq1" BENCH_guidelines.json
rm -f "$gq1" "$gq8" "$gq8b"
echo "   quick sweep: $gcount guidelines over $pcount platforms, zero severe, jobs-invariant"
printf '%s\n' "$s1" | grep -E '^severe violations:' | sed 's/^/   /'

if [ -n "$GUIDELINES_FULL" ]; then
    echo "== guidelines: full sweep determinism (--guidelines)"
    gf1=/tmp/verify_guidelines_full1.$$.json
    gf2=/tmp/verify_guidelines_full2.$$.json
    ./target/release/guidelines_report --jobs 8 --out "$gf1" >/dev/null 2>&1 || {
        rm -f "$gf1" "$gf2"
        echo "FAIL: full guideline sweep found severe violations (or failed)" >&2
        exit 1
    }
    ./target/release/guidelines_report --jobs 1 --out "$gf2" >/dev/null 2>&1 || {
        rm -f "$gf1" "$gf2"
        echo "FAIL: full guideline sweep (jobs 1) found severe violations (or failed)" >&2
        exit 1
    }
    if ! cmp -s "$gf1" "$gf2"; then
        echo "FAIL: full-sweep BENCH_guidelines.json not byte-identical across runs/jobs" >&2
        rm -f "$gf1" "$gf2"
        exit 1
    fi
    rm -f "$gf1" "$gf2"
    echo "   full sweep: deterministic and jobs-invariant"
fi

echo "== adcld smoke: daemon serves, learns, and survives a restart"
# Tuning-as-a-service gate: a cold query sweeps, its repeat must be a
# history hit with the byte-identical decision, and after a shutdown a
# fresh daemon on the same history file must serve the same bytes again.
adcld_dir=/tmp/verify_adcld.$$
rm -rf "$adcld_dir"
mkdir -p "$adcld_dir"
adcld_q='{"id":7,"op":"ialltoall","platform":"whale","nprocs":4,"msg_bytes":4608}'
adcld_start() {
    rm -f "$adcld_dir/addr.txt"
    ./target/release/adcld --listen 127.0.0.1:0 --history "$adcld_dir/history.tsv" \
        --checkpoint-every 1 --addr-file "$adcld_dir/addr.txt" >"$adcld_dir/$1.log" 2>&1 &
    adcld_pid=$!
    for _ in $(seq 1 100); do
        [ -s "$adcld_dir/addr.txt" ] && break
        sleep 0.1
    done
    if ! [ -s "$adcld_dir/addr.txt" ]; then
        echo "FAIL: adcld did not write its address file" >&2
        cat "$adcld_dir/$1.log" >&2 || true
        kill "$adcld_pid" 2>/dev/null || true
        exit 1
    fi
    adcld_addr=$(head -1 "$adcld_dir/addr.txt")
}
adcld_start boot
cold=$(./target/release/adcld_bench --connect "$adcld_addr" --query "$adcld_q")
warm=$(./target/release/adcld_bench --connect "$adcld_addr" --query "$adcld_q")
./target/release/adcld_bench --connect "$adcld_addr" --shutdown >/dev/null
wait "$adcld_pid"
if ! printf '%s' "$warm" | grep -q '"source":"history-hit"'; then
    echo "FAIL: repeated adcld query was not a history hit: $warm" >&2
    rm -rf "$adcld_dir"
    exit 1
fi
cold_dec=$(printf '%s' "$cold" | grep -o '"decision":{[^}]*}')
warm_dec=$(printf '%s' "$warm" | grep -o '"decision":{[^}]*}')
if [ -z "$cold_dec" ] || [ "$cold_dec" != "$warm_dec" ]; then
    echo "FAIL: adcld cold and warm decisions differ" >&2
    printf 'cold: %s\nwarm: %s\n' "$cold" "$warm" >&2
    rm -rf "$adcld_dir"
    exit 1
fi
adcld_start restart
warm2=$(./target/release/adcld_bench --connect "$adcld_addr" --query "$adcld_q")
./target/release/adcld_bench --connect "$adcld_addr" --shutdown >/dev/null
wait "$adcld_pid"
rm -rf "$adcld_dir"
if [ "$warm2" != "$warm" ]; then
    echo "FAIL: restarted adcld served different bytes for the same query" >&2
    printf 'before: %s\nafter : %s\n' "$warm" "$warm2" >&2
    exit 1
fi
echo "   cold sweep -> history hit, decision byte-identical across restart"

echo "== adcld racing off-switch: NBC_RACING=off fixed sweeps still serve"
# The racing default must be escapable: with NBC_RACING=off the daemon
# takes the classic per-candidate fixed-sweep path, and two independent
# off-mode daemons must serve byte-identical decisions.
adcld_off_dir=/tmp/verify_adcld_off.$$
rm -rf "$adcld_off_dir"
mkdir -p "$adcld_off_dir"
adcld_off_q='{"id":8,"op":"ialltoall","platform":"whale","nprocs":4,"msg_bytes":5120}'
adcld_off_run() {
    rm -f "$adcld_off_dir/addr.txt"
    NBC_RACING=off ./target/release/adcld --listen 127.0.0.1:0 \
        --history "$adcld_off_dir/$1.tsv" --checkpoint-every 1 \
        --addr-file "$adcld_off_dir/addr.txt" >"$adcld_off_dir/$1.log" 2>&1 &
    adcld_off_pid=$!
    for _ in $(seq 1 100); do
        [ -s "$adcld_off_dir/addr.txt" ] && break
        sleep 0.1
    done
    if ! [ -s "$adcld_off_dir/addr.txt" ]; then
        echo "FAIL: NBC_RACING=off adcld did not write its address file" >&2
        cat "$adcld_off_dir/$1.log" >&2 || true
        kill "$adcld_off_pid" 2>/dev/null || true
        exit 1
    fi
    adcld_off_addr=$(head -1 "$adcld_off_dir/addr.txt")
    adcld_off_resp=$(./target/release/adcld_bench --connect "$adcld_off_addr" --query "$adcld_off_q")
    ./target/release/adcld_bench --connect "$adcld_off_addr" --shutdown >/dev/null
    wait "$adcld_off_pid"
}
adcld_off_run a
off_a=$adcld_off_resp
adcld_off_run b
off_b=$adcld_off_resp
rm -rf "$adcld_off_dir"
if [ -z "$off_a" ] || ! printf '%s' "$off_a" | grep -q '"decision"'; then
    echo "FAIL: NBC_RACING=off daemon served no decision: $off_a" >&2
    exit 1
fi
if [ "$off_a" != "$off_b" ]; then
    echo "FAIL: NBC_RACING=off decisions differ across daemons" >&2
    printf 'a: %s\nb: %s\n' "$off_a" "$off_b" >&2
    exit 1
fi
echo "   off-mode fixed sweep served, byte-identical across independent daemons"

echo "== adcld admission gate: 8 concurrent cold queries, <= 2 pool sweeps"
# 8 distinct cold keys submitted before any response is read must be
# drained as at most 2 batched pool admissions (the queue-wait metric
# split proves they waited together instead of serializing).
if ! gate_out=$(./target/release/adcld_bench --admission-gate --jobs 8); then
    echo "FAIL: adcld_bench --admission-gate exited non-zero" >&2
    printf '%s\n' "$gate_out" >&2
    exit 1
fi
printf '%s\n' "$gate_out" | sed 's/^/   /'
if ! printf '%s\n' "$gate_out" | grep -q 'adcld_admission: .* OK'; then
    echo "FAIL: admission gate did not report its OK line" >&2
    exit 1
fi

echo "== refresh BENCH_engine.json"
baseline=$(git show HEAD:BENCH_engine.json 2>/dev/null || true)
# shellcheck disable=SC2086  # PROFILE_FLAG is intentionally word-split
traj=$(./target/release/perf_trajectory --quick --jobs 8 $PROFILE_FLAG)
printf '%s\n' "$traj"

echo "== schema tags: every BENCH document must carry its expected version"
for pair in "BENCH_engine.json adcl-bench-engine-v8" "BENCH_guidelines.json adcl-guidelines-v1"; do
    file=${pair%% *}
    tag=${pair##* }
    if ! grep -q "\"schema\": \"$tag\"" "$file"; then
        echo "FAIL: $file does not carry schema tag $tag" >&2
        exit 1
    fi
    echo "   $file: $tag"
done
if [ -n "$PROFILE_FLAG" ]; then
    if ! grep -q '"schema": "adcl-bench-profile-v2"' BENCH_profile.json; then
        echo "FAIL: BENCH_profile.json does not carry schema tag adcl-bench-profile-v2" >&2
        exit 1
    fi
    echo "   BENCH_profile.json: adcl-bench-profile-v2"
fi

echo "== sweep_scale: cross-jobs digest must match the serial run"
# perf_trajectory computes a result digest at jobs 1/2/8 and exits non-zero
# on mismatch; require the explicit OK line so a silently skipped check
# can't pass.
if ! printf '%s\n' "$traj" | grep -q 'sweep_scale: jobs-invariance OK'; then
    echo "FAIL: perf_trajectory did not report sweep_scale jobs-invariance" >&2
    exit 1
fi
echo "   $(printf '%s\n' "$traj" | grep 'sweep_scale: jobs-invariance OK')"

echo "== world_scale: partitioned runs must match the serial digest (hard)"
# perf_trajectory forces Fixed(2) and Fixed(8) on the 4096-rank world and
# exits non-zero on any digest divergence — even on a 1-CPU host, so the
# partition-identity contract is exercised everywhere. Require the OK line
# so a silently skipped section can't pass.
if ! printf '%s\n' "$traj" | grep -q 'world_scale: partition-invariance OK'; then
    echo "FAIL: perf_trajectory did not report world_scale partition-invariance" >&2
    exit 1
fi
echo "   $(printf '%s\n' "$traj" | grep 'world_scale: partition-invariance OK')"

echo "== adcld_serve: warm traffic must be history/memo hits only (hard)"
# perf_trajectory drives the in-process daemon through cold/warm/mixed
# load and exits non-zero if any warm request re-simulated; require the
# OK line and the v7 report section so a skipped phase can't pass.
if ! printf '%s\n' "$traj" | grep -q 'adcld_serve: warm traffic served from history/memo only'; then
    echo "FAIL: perf_trajectory did not report the adcld_serve warm-traffic gate" >&2
    exit 1
fi
if ! grep -q '"adcld_serve"' BENCH_engine.json; then
    echo "FAIL: BENCH_engine.json carries no adcld_serve section" >&2
    exit 1
fi
echo "   $(printf '%s\n' "$traj" | grep 'adcld_serve: warm traffic')"

echo "== racing: decision parity + events-per-decision savings (hard)"
# perf_trajectory runs each racing config against brute force and exits
# non-zero on any winner mismatch or on < 30% event savings; require both
# OK lines and the v8 report section so a skipped phase can't pass.
if ! printf '%s\n' "$traj" | grep -q 'racing: decision parity OK'; then
    echo "FAIL: perf_trajectory did not report the racing decision-parity gate" >&2
    exit 1
fi
if ! printf '%s\n' "$traj" | grep -q 'racing: sim events/decision .* OK'; then
    echo "FAIL: perf_trajectory did not report the racing events-per-decision gate" >&2
    exit 1
fi
if ! grep -q '"racing"' BENCH_engine.json; then
    echo "FAIL: BENCH_engine.json carries no racing section" >&2
    exit 1
fi
printf '%s\n' "$traj" | grep '^racing: ' | sed 's/^/   /'

echo "== scaling gate (clamped-aware, hard)"
# Schema v6 marks every row that requested more workers than the host has
# hardware threads with "clamped": true — those rows measure the host, not
# the engine, and are skipped explicitly (no host heuristic). For the
# remaining (physically meaningful) rows:
#   - sweep_scale at jobs >= 4 must reach 2.0x (hard floor; 4.0x target),
#   - world_scale at jobs >= 8 should reach 2.0x (soft: the intra-world
#     windows pay barrier latency that the embarrassingly parallel sweep
#     does not, so a miss warns instead of failing),
#   - every other parallel row must stay >= 0.75x of serial (hard; the
#     pre-clamp regressions sat at 0.54x) with parity (0.95x) as target.
host_threads=$(grep -o '"host_threads": *[0-9]*' BENCH_engine.json | head -1 | grep -o '[0-9]*$')
host_threads=${host_threads:-1}
echo "   host_threads=$host_threads (clamped rows are skipped per-row, not per-host)"
awk '
    function field(line, key,   v) {
        v = line
        if (!sub(".*\"" key "\": *", "", v)) return ""
        sub("[,}].*", "", v)
        gsub(/"/, "", v)
        return v
    }
    /"name":.*"speedup_vs_serial":/ {
        name = field($0, "name")
        jobs = field($0, "jobs") + 0
        sp = field($0, "speedup_vs_serial")
        clamped = field($0, "clamped")
        if (jobs <= 1 || sp == "null" || sp == "") next
        if (clamped == "true") {
            printf "   %-28s jobs=%d speedup %sx  (clamped row, skipped)\n", name, jobs, sp
            next
        }
        s = sp + 0
        note = ""
        if (name == "sweep_scale" && jobs >= 4) {
            if (s < 2.0) { bad = 1; note = "  FAIL: below 2.0x hard floor" }
            else if (s < 4.0) note = "  WARN: below 4.0x target"
        } else if (name == "world_scale" && jobs >= 8) {
            if (s < 2.0) note = "  WARN: below 2.0x soft target (window barriers?)"
        } else if (s < 0.75) {
            bad = 1
            note = "  FAIL: parallel row below 0.75x serial (clamp/cutoff broken?)"
        } else if (s < 0.95) {
            note = "  WARN: below serial parity (host jitter?)"
        }
        printf "   %-28s jobs=%d speedup %sx%s\n", name, jobs, sp, note
    }
    END { exit bad ? 1 : 0 }
' BENCH_engine.json || {
    echo "FAIL: scaling gate did not hold" >&2
    exit 1
}

echo "== bench regression guard (>20% events/sec drop vs committed baseline)"
if [ -z "$baseline" ]; then
    echo "   no committed BENCH_engine.json baseline; skipping"
else
    # Entries are single-line JSON objects: compare events_per_sec keyed on
    # (name, jobs); fail if a fresh value drops below 0.8x the baseline.
    # Only jobs == 1 rows gate the build: on a single-CPU host the
    # multi-thread rows measure thread oversubscription, not engine
    # throughput, so their ratios are printed for information only.
    printf '%s\n' "$baseline" >/tmp/bench_baseline.$$
    awk '
        function field(line, key,   v) {
            v = line
            if (!sub(".*\"" key "\": *", "", v)) return ""
            sub("[,}].*", "", v)
            gsub(/"/, "", v)
            return v
        }
        /"name":.*"events_per_sec":/ {
            k = field($0, "name") "@" field($0, "jobs")
            v = field($0, "events_per_sec") + 0
            if (FNR == NR) { base[k] = v; next }
            if (k in base && base[k] > 0) {
                ratio = v / base[k]
                note = ""
                if (ratio < 0.8) {
                    if (field($0, "jobs") == 1) { bad = 1; note = "  REGRESSION" }
                    else { note = "  (informational: parallel row)" }
                }
                printf "   %-28s %12.0f -> %12.0f ev/s (%.2fx)%s\n", k, base[k], v, ratio, note
            } else {
                printf "   %-28s (no comparable baseline) %12.0f ev/s\n", k, v
            }
        }
        END { if (FNR == NR) exit 0; exit bad ? 1 : 0 }
    ' /tmp/bench_baseline.$$ BENCH_engine.json || {
        rm -f /tmp/bench_baseline.$$
        echo "FAIL: serial events/sec regressed >20% vs committed BENCH_engine.json" >&2
        exit 1
    }
    rm -f /tmp/bench_baseline.$$
fi

echo "== cache + memo hit rates (this verify run)"
grep -E '"schedule_cache"|"sim_memo"|"payload_allocs"' BENCH_engine.json | sed 's/^ */   /'

echo "verify: OK"
