#!/usr/bin/env bash
# Full verification pass: formatting, lints, build, tests, the smoke-sized
# figure suite (serial vs parallel must be byte-identical), and a refresh
# of the engine perf trajectory (BENCH_engine.json).
#
# Usage: scripts/verify.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo build --release"
cargo build --release --workspace --all-targets

echo "== cargo test"
cargo test --workspace -q

echo "== quick figure suite: --jobs 1 vs --jobs 8 must be byte-identical"
for bin in table_verification_stats table_fft_stats; do
    s1=$(./target/release/"$bin" --quick --jobs 1)
    s8=$(./target/release/"$bin" --quick --jobs 8)
    if [ "$s1" != "$s8" ]; then
        echo "FAIL: $bin output differs between --jobs 1 and --jobs 8" >&2
        diff <(printf '%s\n' "$s1") <(printf '%s\n' "$s8") >&2 || true
        exit 1
    fi
    echo "   $bin: identical ($(printf '%s' "$s1" | wc -c) bytes)"
done

echo "== refresh BENCH_engine.json"
./target/release/perf_trajectory --quick

echo "verify: OK"
