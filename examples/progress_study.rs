//! Influence of the number of progress calls (paper Figs. 6 and 7,
//! scaled down).
//!
//! Two effects are demonstrated:
//!
//! 1. more progress calls are not free — past the point of full overlap,
//!    every extra call is pure overhead (Fig. 6), and
//! 2. the number of progress calls changes *which algorithm is best*:
//!    single-round algorithms (linear) need few calls, multi-round
//!    algorithms (pairwise, dissemination) need many (Fig. 7).
//!
//! Run with: `cargo run --release --example progress_study`

use autonbc::driver::{CollectiveOp, MicrobenchSpec};
use autonbc::prelude::*;

fn main() {
    let base = MicrobenchSpec {
        platform: Platform::crill(),
        nprocs: 32,
        op: CollectiveOp::Ialltoall,
        msg_bytes: 128 * 1024,
        iters: 20,
        compute_total: SimTime::from_secs(2),
        num_progress: 1,
        noise: NoiseConfig::none(),
        reps: 3,
        placement: Placement::Block,
        imbalance: Imbalance::None,
    };

    println!(
        "Ialltoall on crill, {} processes, {} KiB per pair",
        base.nprocs,
        base.msg_bytes / 1024
    );
    println!();
    println!(
        "{:<10} {:>12} {:>12} {:>14} {:>12}",
        "progress", "linear", "pairwise", "dissemination", "best"
    );
    println!("{:-<64}", "");

    for num_progress in [1usize, 2, 5, 10, 50, 200] {
        let mut spec = base.clone();
        spec.num_progress = num_progress;
        let rows = spec.run_all_fixed();
        let best = rows
            .iter()
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap()
            .0
            .clone();
        println!(
            "{:<10} {:>9.1} ms {:>9.1} ms {:>11.1} ms {:>12}",
            num_progress,
            rows[0].1 * 1e3,
            rows[1].1 * 1e3,
            rows[2].1 * 1e3,
            best
        );
    }

    println!();
    println!("Single-round algorithms overlap with one call; multi-round ones need");
    println!("one call per round — and past full overlap, extra calls only add");
    println!("progress-engine overhead.");
}
