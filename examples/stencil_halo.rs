//! Auto-tuning a Cartesian halo exchange — ADCL's original use case.
//!
//! A Jacobi-style stencil on a periodic 4 × 4 process grid exchanges halos
//! with four neighbours every iteration, overlapping the exchange with the
//! interior update. Three exchange schedules compete (post-all /
//! pairwise-dim / ordered); ADCL picks the winner at run time. The halo
//! size is swept to show the choice is workload-dependent.
//!
//! Run with: `cargo run --release --example stencil_halo`

use autonbc::prelude::*;

fn run(
    platform: &Platform,
    gx: usize,
    gy: usize,
    halo_bytes: usize,
    logic: Option<SelectionLogic>,
) -> Vec<(String, f64)> {
    let p = gx * gy;
    let iters = 80;
    let interior_compute = SimTime::from_micros(800);

    let build_session = |logic: SelectionLogic| {
        let mut world = World::new(
            platform.clone(),
            p,
            Placement::RoundRobin,
            NoiseConfig::light(17),
        );
        let mut session = TuningSession::new(p);
        let fnset = FunctionSet::ineighbor_default(CollSpec::new(p, halo_bytes), gx, gy);
        let op = session.add_op(
            "ineighbor",
            fnset,
            TunerConfig {
                logic,
                // Streaming algorithms (pairwise) only reach their
                // pipelined steady state after several consistent
                // iterations; give the tuner enough samples to see it.
                reps: 12,
                warmup: 3,
                filter: FilterKind::default(),
            },
        );
        let timer = session.add_timer(vec![op]);
        let mk = || {
            let mut v = Vec::new();
            for _ in 0..iters {
                v.push(Instr::TimerStart(timer));
                v.push(Instr::Start { op, slot: 0 });
                // Interior update overlaps the halo exchange.
                v.push(Instr::Compute(interior_compute / 2));
                v.push(Instr::Progress { op });
                v.push(Instr::Compute(interior_compute / 2));
                v.push(Instr::Wait { op, slot: 0 });
                // Boundary update needs the halos.
                v.push(Instr::Compute(interior_compute / 8));
                v.push(Instr::TimerStop(timer));
            }
            v
        };
        let scripts = VecScript::boxed((0..p).map(|_| mk()).collect());
        let mut runner = Runner::new(session, scripts);
        world.run(&mut runner).expect("stencil deadlocked");
        runner.session
    };

    match logic {
        Some(l) => {
            let s = build_session(l);
            let winner = s.ops[0]
                .tuner
                .winner()
                .map(|w| s.ops[0].fnset.functions[w].name.clone())
                .unwrap_or_else(|| "?".into());
            vec![(format!("ADCL -> {winner}"), s.timers[0].total())]
        }
        None => (0..3)
            .map(|i| {
                let s = build_session(SelectionLogic::Fixed(i));
                let name = s.ops[0].fnset.functions[i].name.clone();
                (name, s.timers[0].total())
            })
            .collect(),
    }
}

fn main() {
    let platform = Platform::whale();
    let (gx, gy) = (4usize, 4usize);
    println!(
        "Jacobi halo exchange on {}: {}x{} periodic grid, 30 iterations",
        platform.name, gx, gy
    );
    println!();
    println!(
        "{:<14} {:>12} {:>12} {:>12} {:>24}",
        "halo bytes", "post-all", "pairwise", "ordered", "ADCL"
    );
    println!("{:-<78}", "");
    for halo in [512usize, 8 * 1024, 64 * 1024, 512 * 1024] {
        let fixed = run(&platform, gx, gy, halo, None);
        let tuned = run(&platform, gx, gy, halo, Some(SelectionLogic::BruteForce));
        println!(
            "{:<14} {:>9.2} ms {:>9.2} ms {:>9.2} ms {:>16} {:>4.2} ms",
            halo,
            fixed[0].1 * 1e3,
            fixed[1].1 * 1e3,
            fixed[2].1 * 1e3,
            tuned[0].0,
            tuned[0].1 * 1e3,
        );
    }
    println!();
    println!("The exchange schedule that wins depends on the halo size: the");
    println!("per-dimension exchange wins for small (eager) halos, while post-all");
    println!("maximizes overlap once the halos are large rendezvous messages —");
    println!("and ADCL discovers this per workload at run time.");
}
