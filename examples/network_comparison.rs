//! Network influence on the best implementation (paper Fig. 3, scaled
//! down).
//!
//! The same all-to-all benchmark — identical processes, message sizes and
//! compute — is run on the whale cluster over InfiniBand and over Gigabit
//! Ethernet. The ranking of the implementations flips: the linear
//! algorithm is competitive on IB but collapses under TCP incast.
//!
//! Run with: `cargo run --release --example network_comparison`

use autonbc::driver::{CollectiveOp, MicrobenchSpec};
use autonbc::prelude::*;

fn main() {
    let base = MicrobenchSpec {
        platform: Platform::whale(),
        nprocs: 16,
        op: CollectiveOp::Ialltoall,
        msg_bytes: 128 * 1024,
        iters: 20,
        compute_total: SimTime::from_millis(400),
        num_progress: 5,
        noise: NoiseConfig::none(),
        reps: 3,
        placement: Placement::Block,
        imbalance: Imbalance::None,
    };

    println!(
        "Ialltoall, {} processes, {} KiB per pair, 5 progress calls",
        base.nprocs,
        base.msg_bytes / 1024
    );
    println!();
    println!(
        "{:<16} {:>14} {:>14}",
        "implementation", "whale (IB)", "whale-tcp"
    );
    println!("{:-<46}", "");

    let ib_rows = base.run_all_fixed();
    let mut tcp = base.clone();
    tcp.platform = Platform::whale_tcp();
    // TCP needs more compute to have any chance of hiding communication.
    tcp.compute_total = SimTime::from_secs(4);
    let tcp_rows = tcp.run_all_fixed();

    for ((name, ib_t), (_, tcp_t)) in ib_rows.iter().zip(&tcp_rows) {
        println!(
            "{name:<16} {ib:>11.2} ms {tcp:>11.2} ms",
            ib = ib_t * 1e3,
            tcp = tcp_t * 1e3
        );
    }

    let best = |rows: &[(String, f64)]| {
        rows.iter()
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap()
            .0
            .clone()
    };
    let worst = |rows: &[(String, f64)]| {
        rows.iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap()
            .0
            .clone()
    };
    println!();
    println!(
        "best on IB : {}   | best on TCP : {}",
        best(&ib_rows),
        best(&tcp_rows)
    );
    println!(
        "worst on IB: {}   | worst on TCP: {}",
        worst(&ib_rows),
        worst(&tcp_rows)
    );
    println!();
    println!("The network alone changes which implementation wins — exactly the");
    println!("variability that makes run-time tuning necessary (paper Fig. 3).");
}
