//! Quickstart: tune a non-blocking all-to-all at run time.
//!
//! Runs the paper's micro-benchmark loop on a simulated `whale` cluster
//! (16 processes, 4 KiB per process pair), first with every fixed
//! implementation, then with ADCL's brute-force runtime selection, and
//! shows that the tuned run converges to the best implementation.
//!
//! Run with: `cargo run --release --example quickstart`

use autonbc::driver::{CollectiveOp, MicrobenchSpec};
use autonbc::prelude::*;

fn main() {
    let spec = MicrobenchSpec {
        platform: Platform::whale(),
        nprocs: 16,
        op: CollectiveOp::Ialltoall,
        msg_bytes: 4 * 1024,
        iters: 40,
        compute_total: SimTime::from_millis(80),
        num_progress: 5,
        noise: NoiseConfig::light(7),
        reps: 5,
        placement: Placement::Block,
        imbalance: Imbalance::None,
    };

    println!("platform          : {}", spec.platform.name);
    println!("processes         : {}", spec.nprocs);
    println!("message per pair  : {} B", spec.msg_bytes);
    println!(
        "compute per iter  : {}",
        spec.bench_config().compute_per_iter()
    );
    println!();

    println!("-- verification runs (selection logic bypassed) --");
    let fixed = spec.run_all_fixed();
    for (name, total) in &fixed {
        println!("  {name:<16} {total:>9.3} ms", total = total * 1e3);
    }
    let (best_name, best_total) = fixed
        .iter()
        .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
        .cloned()
        .unwrap();

    println!();
    println!("-- ADCL runtime tuning (brute force) --");
    let tuned = spec.run(SelectionLogic::BruteForce);
    println!(
        "  winner          : {} (converged at iteration {})",
        tuned.winner.clone().unwrap_or_default(),
        tuned.converged_at.unwrap_or(0)
    );
    println!("  total           : {:>9.3} ms", tuned.total * 1e3);
    println!("  post-learning   : {:>9.3} ms", tuned.post_learning * 1e3);
    println!();
    if tuned.winner.as_deref() == Some(best_name.as_str()) {
        println!("ADCL picked the oracle-best implementation ({best_name}).");
    } else {
        println!(
            "ADCL picked {:?}; oracle best was {} ({:.3} ms).",
            tuned.winner,
            best_name,
            best_total * 1e3
        );
    }
}
