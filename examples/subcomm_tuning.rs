//! Independent tuning on sub-communicators.
//!
//! A 16-rank world is split into two disjoint 8-rank communicators running
//! different workloads: group A exchanges small (eager) blocks, group B
//! exchanges large (rendezvous) blocks. Each group's `Ialltoall` is a
//! separate ADCL request with its own timer, tuned independently and
//! concurrently — and they converge to *different* winners, which is the
//! whole point of per-request run-time tuning.
//!
//! Run with: `cargo run --release --example subcomm_tuning`

use autonbc::prelude::*;

struct GroupResult {
    winner: String,
    total_ms: f64,
    per_impl: Vec<(String, f64)>,
}

fn run(split_msgs: [usize; 2]) -> [GroupResult; 2] {
    let nranks = 16;
    let mut world = World::new(
        Platform::whale(),
        nranks,
        Placement::RoundRobin,
        NoiseConfig::none(),
    );
    let mut session = TuningSession::new(nranks);
    let comms: [Vec<usize>; 2] = [(0..8).collect(), (8..16).collect()];
    let iters = 30;

    let mut ops = Vec::new();
    let mut timers = Vec::new();
    for (comm, msg) in comms.iter().zip(split_msgs) {
        let op = session.add_op_on_comm(
            "ialltoall",
            FunctionSet::ialltoall_default(CollSpec::new(comm.len(), msg)),
            TunerConfig {
                logic: SelectionLogic::BruteForce,
                reps: 4,
                warmup: 1,
                filter: FilterKind::default(),
            },
            comm.clone(),
        );
        let timer = session.add_timer_subset(vec![op], comm);
        ops.push(op);
        timers.push(timer);
    }

    let mk = |op: usize, timer: usize| {
        let mut v = Vec::new();
        for _ in 0..iters {
            v.push(Instr::TimerStart(timer));
            v.push(Instr::Start { op, slot: 0 });
            v.push(Instr::Compute(SimTime::from_micros(400)));
            v.push(Instr::Progress { op });
            v.push(Instr::Compute(SimTime::from_micros(400)));
            v.push(Instr::Progress { op });
            v.push(Instr::Wait { op, slot: 0 });
            v.push(Instr::TimerStop(timer));
        }
        v
    };
    let scripts = VecScript::boxed(
        (0..nranks)
            .map(|r| {
                let g = if r < 8 { 0 } else { 1 };
                mk(ops[g], timers[g])
            })
            .collect(),
    );
    let mut runner = Runner::new(session, scripts);
    world.run(&mut runner).expect("subcomm run deadlocked");
    let s = runner.session;
    [0, 1].map(|g| {
        let op = ops[g];
        let tuner = &s.ops[op].tuner;
        let per_impl = (0..3)
            .map(|f| {
                (
                    s.ops[op].fnset.functions[f].name.clone(),
                    tuner.score(f) * 1e3,
                )
            })
            .collect();
        GroupResult {
            winner: tuner
                .winner()
                .map(|w| s.ops[op].fnset.functions[w].name.clone())
                .unwrap_or_else(|| "?".into()),
            total_ms: s.timers[timers[g]].total() * 1e3,
            per_impl,
        }
    })
}

fn main() {
    println!("Two disjoint 8-rank communicators on whale, tuned concurrently:");
    println!("  group A (ranks 0-7)  : Ialltoall with 1 KiB blocks");
    println!("  group B (ranks 8-15) : Ialltoall with 256 KiB blocks");
    println!();
    let [a, b] = run([1024, 256 * 1024]);
    for (label, g) in [("group A (1 KiB)", &a), ("group B (256 KiB)", &b)] {
        println!(
            "{label}: winner = {}, section total = {:.2} ms",
            g.winner, g.total_ms
        );
        for (name, score) in &g.per_impl {
            println!("    measured {name:<16} {score:>8.3} ms/iter");
        }
    }
    println!();
    if a.winner != b.winner {
        println!("The two groups picked different implementations — per-request");
        println!("tuning adapts each communicator to its own workload.");
    } else {
        println!(
            "Both groups picked {}; margins at this scale are small.",
            a.winner
        );
    }
}
