//! 3-D FFT application kernel with auto-tuned non-blocking all-to-all
//! (paper §IV-B, scaled down).
//!
//! Runs the four communication patterns (pipelined / tiled / windowed /
//! window-tiled) with three communication back-ends: LibNBC's fixed linear
//! non-blocking all-to-all, blocking `MPI_Alltoall`, and ADCL's run-time
//! tuned implementation. Also validates the numerical FFT on a small grid.
//!
//! Run with: `cargo run --release --example fft_tuning`

use autonbc::fft3d::multi::{fft_3d, ifft_3d, Grid3};
use autonbc::fft3d::Complex64;
use autonbc::prelude::*;

fn main() {
    // -- numerical sanity: the kernel is a real FFT ------------------
    let mut grid = Grid3::from_fn(16, 16, 16, |x, y, z| {
        Complex64::new((x * 31 + y * 7 + z) as f64 % 5.0 - 2.0, 0.0)
    });
    let original = grid.clone();
    fft_3d(&mut grid, 2);
    ifft_3d(&mut grid, 2);
    let err = grid
        .data
        .iter()
        .zip(&original.data)
        .map(|(a, b)| (*a - *b).abs())
        .fold(0.0f64, f64::max);
    println!("3-D FFT round-trip max error on 16^3 grid: {err:.2e}");
    assert!(err < 1e-9);
    println!();

    // -- the distributed kernel on the simulated cluster -------------
    let p = 16;
    let cfg = FftKernelConfig {
        n: 128,
        planes_per_rank: 8,
        iters: 24,
        tile: 4,
        progress_per_tile: 2,
        reps: 3,
        placement: Placement::Block,
    };
    println!(
        "3-D FFT kernel on whale, {} processes, {}x{}x{} grid, {} iterations",
        p,
        cfg.n,
        cfg.n,
        p * cfg.planes_per_rank,
        cfg.iters
    );
    println!();
    println!(
        "{:<14} {:>12} {:>14} {:>12} {:>16}",
        "pattern", "libnbc", "mpi-blocking", "adcl", "adcl winner"
    );
    println!("{:-<72}", "");

    let platform = Platform::whale();
    for pattern in FftPattern::all() {
        let nbc = run_fft_kernel(
            &platform,
            p,
            &cfg,
            pattern,
            FftMode::LibNbc,
            NoiseConfig::none(),
        );
        let mpi = run_fft_kernel(
            &platform,
            p,
            &cfg,
            pattern,
            FftMode::BlockingMpi,
            NoiseConfig::none(),
        );
        let adcl_run = run_fft_kernel(
            &platform,
            p,
            &cfg,
            pattern,
            FftMode::Adcl(SelectionLogic::BruteForce),
            NoiseConfig::none(),
        );
        println!(
            "{:<14} {:>9.1} ms {:>11.1} ms {:>9.1} ms {:>16}",
            pattern.name(),
            nbc.total_time * 1e3,
            mpi.total_time * 1e3,
            adcl_run.total_time * 1e3,
            adcl_run.winner.unwrap_or_default()
        );
    }
    println!();
    println!("ADCL tunes the all-to-all per pattern; LibNBC is stuck with its");
    println!("single linear implementation (paper Figs. 9-10).");
}
